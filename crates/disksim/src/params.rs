//! Simulation parameters: the IBM Ultrastar 36Z15 figures of Table 1 plus
//! the TPM/DRPM policy knobs.

use std::fmt;

/// Physical/service parameters of one disk (I/O node), defaulting to the
/// IBM Ultrastar 36Z15 datasheet values used in the paper (Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskParams {
    /// Average seek time in milliseconds (3.4 ms).
    pub avg_seek_ms: f64,
    /// Full-platter rotation time at maximum RPM in milliseconds; the
    /// average rotational latency is half of this (Table 1 lists the 2 ms
    /// average for 15 000 RPM, i.e. a 4 ms revolution).
    pub avg_rotation_ms: f64,
    /// Internal transfer rate at maximum RPM, in MB/s (55 MB/s).
    pub transfer_mb_s: f64,
    /// Maximum rotational speed in RPM (15 000).
    pub max_rpm: u32,
    /// Power while servicing a request at maximum RPM, in watts (13.5 W).
    pub active_power_w: f64,
    /// Power while idle (spinning at maximum RPM), in watts (10.2 W).
    pub idle_power_w: f64,
    /// Power in standby (spun down), in watts (2.5 W).
    pub standby_power_w: f64,
    /// Energy of an idle→standby spin-down, in joules (13 J).
    pub spin_down_energy_j: f64,
    /// Duration of an idle→standby spin-down, in milliseconds (1.5 s).
    pub spin_down_ms: f64,
    /// Energy of a standby→active spin-up, in joules (135 J).
    pub spin_up_energy_j: f64,
    /// Duration of a standby→active spin-up, in milliseconds (10.9 s).
    pub spin_up_ms: f64,
    /// On-disk cache size in bytes (4 MB; informational — request
    /// coalescing in the trace generator stands in for cache hits).
    pub cache_bytes: u64,
}

impl DiskParams {
    /// The IBM Ultrastar 36Z15 parameters from Table 1 of the paper.
    pub fn ultrastar_36z15() -> Self {
        DiskParams {
            avg_seek_ms: 3.4,
            avg_rotation_ms: 4.0,
            transfer_mb_s: 55.0,
            max_rpm: 15_000,
            active_power_w: 13.5,
            idle_power_w: 10.2,
            standby_power_w: 2.5,
            spin_down_energy_j: 13.0,
            spin_down_ms: 1_500.0,
            spin_up_energy_j: 135.0,
            spin_up_ms: 10_900.0,
            cache_bytes: 4 * 1024 * 1024,
        }
    }

    /// Average rotational latency (half a revolution) at `rpm`.
    pub fn rotational_latency_ms(&self, rpm: u32) -> f64 {
        debug_assert!(rpm > 0);
        let rev_ms = 60_000.0 / f64::from(rpm);
        rev_ms / 2.0
    }

    /// Transfer time for `bytes` at `rpm` (media rate scales linearly with
    /// rotation speed).
    pub fn transfer_ms(&self, bytes: u64, rpm: u32) -> f64 {
        let rate = self.transfer_mb_s * f64::from(rpm) / f64::from(self.max_rpm);
        (bytes as f64) / (rate * 1024.0 * 1024.0) * 1000.0
    }

    /// Service time of one contiguous sub-request at `rpm`; `sequential`
    /// requests skip the positioning (seek + rotational latency) cost.
    pub fn service_ms(&self, bytes: u64, rpm: u32, sequential: bool) -> f64 {
        let positioning = if sequential {
            0.0
        } else {
            self.avg_seek_ms + self.rotational_latency_ms(rpm)
        };
        positioning + self.transfer_ms(bytes, rpm)
    }

    /// TPM break-even time in milliseconds: the idle duration at which
    /// spinning down exactly pays for the transition energy (Table 1 lists
    /// 15.2 s for the Ultrastar figures).
    pub fn break_even_ms(&self) -> f64 {
        // idle_power * t = down_e + up_e + standby_power * (t - t_down - t_up)
        //                + (energy already counted during transitions)
        // Solving the paper's simplified form:
        let trans_e = self.spin_down_energy_j + self.spin_up_energy_j;
        let trans_t = (self.spin_down_ms + self.spin_up_ms) / 1000.0;
        let t =
            (trans_e - self.standby_power_w * trans_t) / (self.idle_power_w - self.standby_power_w);
        t * 1000.0
    }

    /// Idle power while spinning at `rpm` (quadratic estimation as in the
    /// DRPM paper \[13\]): electronics floor plus a spindle term ∝ RPM².
    pub fn idle_power_at_rpm_w(&self, rpm: u32) -> f64 {
        let ratio = f64::from(rpm) / f64::from(self.max_rpm);
        self.standby_power_w + (self.idle_power_w - self.standby_power_w) * ratio * ratio
    }

    /// Active (servicing) power at `rpm`, same quadratic estimation.
    pub fn active_power_at_rpm_w(&self, rpm: u32) -> f64 {
        let ratio = f64::from(rpm) / f64::from(self.max_rpm);
        self.standby_power_w + (self.active_power_w - self.standby_power_w) * ratio * ratio
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams::ultrastar_36z15()
    }
}

/// TPM (traditional power management) policy knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TpmConfig {
    /// Idle time after which the disk spins down, in milliseconds. Table 1
    /// lists the break-even (15.2 s); the default timeout is twice that —
    /// the classic rent-to-buy rule — which avoids spin-down thrash on
    /// idle periods just past break-even.
    pub spin_down_timeout_ms: f64,
    /// Compiler-directed mode: the compiler knows the access pattern, so a
    /// spin-up call is issued early enough for the disk to be ready when
    /// the next request arrives (Son et al. \[25\]); the reactive 10.9 s
    /// stall disappears whenever the standby period is long enough to hide
    /// it. Used by the restructured (T-…) code versions.
    pub proactive: bool,
}

impl Default for TpmConfig {
    fn default() -> Self {
        TpmConfig {
            spin_down_timeout_ms: 30_400.0,
            proactive: false,
        }
    }
}

impl TpmConfig {
    /// The configuration the compiler-transformed versions run under.
    pub fn proactive() -> Self {
        TpmConfig {
            proactive: true,
            ..TpmConfig::default()
        }
    }
}

/// DRPM (dynamic rotations-per-minute) policy knobs, after Gurumurthi et
/// al. \[13\]: a multi-speed disk that lowers its RPM during idleness and
/// ramps back up when a response-time window shows excessive slowdown.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DrpmConfig {
    /// Lowest RPM level (Table 1: 3 000).
    pub min_rpm: u32,
    /// RPM step between adjacent levels (Table 1: 3 000).
    pub rpm_step: u32,
    /// Requests per response-time observation window (Table 1: 100).
    pub window_size: u32,
    /// Window controller: when the window's mean response exceeds this
    /// multiple of the full-speed estimate, step one level *up*.
    pub max_slowdown: f64,
    /// Window controller: when the window's mean response stays below this
    /// multiple of the full-speed estimate, step one level *down*.
    pub min_slowdown: f64,
    /// Idle controller: an idle gap longer than this starts ramping the
    /// spindle down toward the minimum level.
    pub idle_ramp_threshold_ms: f64,
    /// Idle controller: additional idle time per further level down.
    pub step_down_idle_ms: f64,
    /// Time to move between adjacent RPM levels.
    pub transition_ms_per_step: f64,
    /// Compiler-directed mode: the upcoming end of a long idle period is
    /// known, so the spindle ramps back to full speed just in time and the
    /// first requests of a new disk phase are served at maximum RPM. Used
    /// by the restructured (T-…) code versions.
    pub proactive: bool,
}

impl Default for DrpmConfig {
    fn default() -> Self {
        DrpmConfig {
            min_rpm: 3_000,
            rpm_step: 3_000,
            window_size: 100,
            max_slowdown: 1.6,
            min_slowdown: 1.3,
            idle_ramp_threshold_ms: 8_000.0,
            step_down_idle_ms: 4_000.0,
            transition_ms_per_step: 150.0,
            proactive: false,
        }
    }
}

impl DrpmConfig {
    /// The configuration the compiler-transformed versions run under.
    pub fn proactive() -> Self {
        DrpmConfig {
            proactive: true,
            ..DrpmConfig::default()
        }
    }
}

impl DrpmConfig {
    /// The RPM levels from max down to min.
    pub fn levels(&self, max_rpm: u32) -> Vec<u32> {
        let mut v = Vec::new();
        let mut r = max_rpm;
        while r >= self.min_rpm {
            v.push(r);
            if r < self.min_rpm + self.rpm_step {
                break;
            }
            r -= self.rpm_step;
        }
        v
    }
}

/// A named disk class: one Table-1-style parameter set plus the usable
/// capacity of a single disk of the class. Tiers of a heterogeneous array
/// are built from classes; every disk of a tier shares its class's
/// parameters and power model.
#[derive(Clone, Debug, PartialEq)]
pub struct DiskClass {
    /// Human-readable class name (shows up in reports and diagnostics).
    pub name: &'static str,
    /// The class's physical/service/power parameters.
    pub params: DiskParams,
    /// Usable capacity of one disk of this class, in bytes.
    pub capacity_bytes: u64,
}

impl DiskClass {
    /// The paper's performance class: IBM Ultrastar 36Z15 (Table 1).
    pub fn performance() -> Self {
        DiskClass {
            name: "perf",
            params: DiskParams::ultrastar_36z15(),
            capacity_bytes: 36 * 1024 * 1024 * 1024,
        }
    }

    /// A 7 200 RPM nearline class: slower and higher-latency than the
    /// Ultrastar, but far cheaper to keep spinning and far cheaper to spin
    /// down (break-even ≈ 4.5 s vs ≈ 16 s), so cold data parked here lets
    /// TPM/DRPM actually engage.
    pub fn nearline() -> Self {
        DiskClass {
            name: "nearline",
            params: DiskParams {
                avg_seek_ms: 8.5,
                avg_rotation_ms: 8.33,
                transfer_mb_s: 30.0,
                max_rpm: 7_200,
                active_power_w: 8.0,
                idle_power_w: 5.3,
                standby_power_w: 0.8,
                spin_down_energy_j: 6.0,
                spin_down_ms: 1_000.0,
                spin_up_energy_j: 20.0,
                spin_up_ms: 6_000.0,
                cache_bytes: 8 * 1024 * 1024,
            },
            capacity_bytes: 250 * 1024 * 1024 * 1024,
        }
    }

    /// A 5 400 RPM archive class: the coldest, most spin-down-friendly
    /// tier (break-even ≈ 2.9 s).
    pub fn archive() -> Self {
        DiskClass {
            name: "archive",
            params: DiskParams {
                avg_seek_ms: 12.0,
                avg_rotation_ms: 11.1,
                transfer_mb_s: 20.0,
                max_rpm: 5_400,
                active_power_w: 6.0,
                idle_power_w: 3.8,
                standby_power_w: 0.6,
                spin_down_energy_j: 4.0,
                spin_down_ms: 800.0,
                spin_up_energy_j: 12.0,
                spin_up_ms: 4_000.0,
                cache_bytes: 8 * 1024 * 1024,
            },
            capacity_bytes: 500 * 1024 * 1024 * 1024,
        }
    }
}

/// One tier of a heterogeneous array: `disks` identical disks of `class`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tier {
    /// The disk class backing this tier.
    pub class: DiskClass,
    /// Number of disks in the tier.
    pub disks: usize,
}

/// A heterogeneous array: tiers of disk classes, in tier order (tier 0 is
/// the performance tier by convention). Global disk ids run contiguously
/// through the tiers, so `tier_of_disk`/`params_of_disk` are cheap.
#[derive(Clone, Debug, PartialEq)]
pub struct TierConfig {
    stripe_unit: u64,
    tiers: Vec<Tier>,
}

impl TierConfig {
    /// Creates a tier configuration.
    ///
    /// # Panics
    ///
    /// Panics if `stripe_unit == 0`, `tiers` is empty, or a tier has no
    /// disks.
    pub fn new(stripe_unit: u64, tiers: Vec<Tier>) -> Self {
        assert!(stripe_unit > 0, "stripe unit must be positive");
        assert!(!tiers.is_empty(), "need at least one tier");
        for (t, tier) in tiers.iter().enumerate() {
            assert!(tier.disks > 0, "tier {t} has no disks");
        }
        TierConfig { stripe_unit, tiers }
    }

    /// A homogeneous "array of one class" — the flat world expressed as a
    /// single tier. With an identity placement this must reproduce the
    /// flat simulator bit for bit.
    pub fn single_class(stripe_unit: u64, class: DiskClass, disks: usize) -> Self {
        TierConfig::new(stripe_unit, vec![Tier { class, disks }])
    }

    /// The canonical heterogeneous testbed: half the disks performance
    /// class, half nearline, at the paper's stripe unit.
    pub fn perf_nearline(stripe_unit: u64, perf_disks: usize, nearline_disks: usize) -> Self {
        TierConfig::new(
            stripe_unit,
            vec![
                Tier {
                    class: DiskClass::performance(),
                    disks: perf_disks,
                },
                Tier {
                    class: DiskClass::nearline(),
                    disks: nearline_disks,
                },
            ],
        )
    }

    /// Stripe unit in bytes (shared by every tier).
    pub fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    /// The tiers, in tier order.
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Number of tiers.
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Total number of disks across all tiers.
    pub fn num_disks(&self) -> usize {
        self.tiers.iter().map(|t| t.disks).sum()
    }

    /// Global id of the first disk of `tier`.
    pub fn first_disk(&self, tier: usize) -> usize {
        self.tiers[..tier].iter().map(|t| t.disks).sum()
    }

    /// The tier owning global disk `disk`.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    pub fn tier_of_disk(&self, disk: usize) -> usize {
        let mut lo = 0;
        for (t, tier) in self.tiers.iter().enumerate() {
            if disk < lo + tier.disks {
                return t;
            }
            lo += tier.disks;
        }
        panic!("disk {disk} out of range ({} disks)", self.num_disks());
    }

    /// The parameter set of global disk `disk`.
    pub fn params_of_disk(&self, disk: usize) -> &DiskParams {
        &self.tiers[self.tier_of_disk(disk)].class.params
    }

    /// The capacity/count skeleton of this array for the placement layer
    /// (`dpm-layout` cannot see disk classes; it only needs geometry).
    pub fn topology(&self) -> dpm_layout::TierTopology {
        dpm_layout::TierTopology::new(
            self.stripe_unit,
            self.tiers
                .iter()
                .map(|t| dpm_layout::TierRange {
                    disks: t.disks,
                    capacity_bytes: t.class.capacity_bytes,
                })
                .collect(),
        )
    }
}

impl fmt::Display for TierConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stripe_unit={}B", self.stripe_unit)?;
        for tier in &self.tiers {
            write!(f, ", {}x{}", tier.disks, tier.class.name)?;
        }
        Ok(())
    }
}

/// Online hot/cold migration policy knobs: windowed per-array access
/// counters drive seeded-deterministic promote/demote decisions at window
/// boundaries, with the moved bytes charged to the energy model as real
/// disk traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MigrationConfig {
    /// Application requests per observation window; decisions happen at
    /// window boundaries only.
    pub window_requests: u64,
    /// Seed of the policy's tie-breaking/hysteresis stream. Same seed ⇒
    /// same promote/demote sequence, at any thread count.
    pub seed: u64,
    /// At most this many moves (promotions or demotions) per boundary.
    pub max_moves_per_window: u32,
    /// Promote only when the candidate's window count exceeds the
    /// fast-tier coldest resident's count by this factor (hysteresis
    /// against ping-ponging).
    pub promote_margin: f64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            window_requests: 256,
            seed: 0x7157_5EED,
            max_moves_per_window: 1,
            promote_margin: 2.0,
        }
    }
}

/// RAID-level striping *inside* one I/O node (§2's second striping level,
/// invisible to the compiler). The node's disks spin and transfer in
/// lock-step: a request's chunks are dealt round-robin, service time is
/// governed by the most-loaded member, and the node draws `members` times
/// the single-disk power.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RaidConfig {
    /// Disks per I/O node (1 = no RAID level).
    pub members: u32,
    /// RAID chunk size in bytes.
    pub chunk_bytes: u64,
}

impl RaidConfig {
    /// A single-disk I/O node — the configuration used in the paper's
    /// experiments ("each I/O node has one disk", §7.1).
    pub fn single() -> Self {
        RaidConfig {
            members: 1,
            chunk_bytes: 8 * 1024,
        }
    }

    /// A RAID-0 node with `members` disks.
    ///
    /// # Panics
    ///
    /// Panics if `members == 0` or `chunk_bytes == 0`.
    pub fn raid0(members: u32, chunk_bytes: u64) -> Self {
        assert!(members > 0, "need at least one member disk");
        assert!(chunk_bytes > 0, "chunk size must be positive");
        RaidConfig {
            members,
            chunk_bytes,
        }
    }

    /// Bytes handled by the most-loaded member for a request of `len`.
    pub fn max_member_bytes(&self, len: u64) -> u64 {
        if self.members == 1 {
            return len;
        }
        let chunks = len.div_ceil(self.chunk_bytes);
        let max_chunks = chunks.div_ceil(u64::from(self.members));
        (max_chunks * self.chunk_bytes).min(len)
    }
}

impl Default for RaidConfig {
    fn default() -> Self {
        RaidConfig::single()
    }
}

/// Knobs of the compiler-directed (static) power policy: the disk acts on
/// explicit `SpinDown`/`PreActivate` directives rather than an idle
/// timeout. The simulator models a *verified* directive set (see
/// `dpm_analyze::verify_hints`), so a spin-down happens at the start of an
/// idle window and the matching pre-activation completes exactly when the
/// next request arrives — no reactive spin-up stall, no timeout wait.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirectiveConfig {
    /// Minimum idle-window length the compiler targets, in milliseconds.
    /// Windows shorter than this carry no directives and are spent at
    /// full-speed idle. Must be at least `spin_down_ms + spin_up_ms` so a
    /// window always fits both transitions; the [`DirectiveConfig::for_params`]
    /// constructor also raises it to the break-even time so every
    /// compiler-inserted spin-down is guaranteed to save energy.
    pub min_idle_ms: f64,
}

impl DirectiveConfig {
    /// The configuration the hint-insertion pass targets for `params`:
    /// spin down exactly the windows that are provably profitable
    /// (`break_even_ms`) and physically feasible (both transitions fit).
    pub fn for_params(params: &DiskParams) -> Self {
        DirectiveConfig {
            min_idle_ms: params
                .break_even_ms()
                .max(params.spin_down_ms + params.spin_up_ms),
        }
    }
}

/// Which power-management mechanism each disk runs.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum PowerPolicy {
    /// No power management: full-speed idle power whenever not servicing
    /// (the paper's Base).
    #[default]
    None,
    /// Traditional power management: spin down after a fixed idle timeout.
    Tpm(TpmConfig),
    /// Dynamic RPM scaling.
    Drpm(DrpmConfig),
    /// Compiler-directed: explicit verified spin-down/pre-activate
    /// directives, executed without timeouts or reactive stalls.
    Directive(DirectiveConfig),
}

impl fmt::Display for PowerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerPolicy::None => write!(f, "none"),
            PowerPolicy::Tpm(c) => write!(f, "TPM(timeout={}ms)", c.spin_down_timeout_ms),
            PowerPolicy::Drpm(c) => write!(f, "DRPM(min={}rpm)", c.min_rpm),
            PowerPolicy::Directive(c) => write!(f, "Directive(min_idle={}ms)", c.min_idle_ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let d = DiskParams::ultrastar_36z15();
        assert_eq!(d.max_rpm, 15_000);
        assert!((d.rotational_latency_ms(15_000) - 2.0).abs() < 1e-9);
        assert!((d.active_power_w - 13.5).abs() < 1e-9);
    }

    #[test]
    fn break_even_close_to_table1() {
        // Table 1 quotes 15.2 s; the closed form with these figures lands
        // within a second of that.
        let d = DiskParams::ultrastar_36z15();
        let be = d.break_even_ms();
        assert!((14_000.0..20_000.0).contains(&be), "break-even {be} ms");
    }

    #[test]
    fn transfer_scales_with_rpm() {
        let d = DiskParams::ultrastar_36z15();
        let full = d.transfer_ms(1024 * 1024, 15_000);
        let slow = d.transfer_ms(1024 * 1024, 3_000);
        assert!((slow / full - 5.0).abs() < 1e-9);
        // 1 MB at 55 MB/s ≈ 18.2 ms.
        assert!((full - 1000.0 / 55.0).abs() < 0.1);
    }

    #[test]
    fn sequential_service_skips_positioning() {
        let d = DiskParams::ultrastar_36z15();
        let seq = d.service_ms(32 * 1024, 15_000, true);
        let rnd = d.service_ms(32 * 1024, 15_000, false);
        assert!((rnd - seq - (3.4 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn quadratic_power_model() {
        let d = DiskParams::ultrastar_36z15();
        assert!((d.idle_power_at_rpm_w(15_000) - 10.2).abs() < 1e-9);
        assert!((d.active_power_at_rpm_w(15_000) - 13.5).abs() < 1e-9);
        let low = d.idle_power_at_rpm_w(3_000);
        assert!(low > 2.5 && low < 3.0, "low-rpm idle power {low}");
        // Monotone in rpm.
        assert!(d.idle_power_at_rpm_w(6_000) < d.idle_power_at_rpm_w(9_000));
    }

    #[test]
    fn drpm_levels() {
        let c = DrpmConfig::default();
        assert_eq!(c.levels(15_000), vec![15_000, 12_000, 9_000, 6_000, 3_000]);
    }

    #[test]
    fn directive_min_idle_covers_break_even_and_transitions() {
        let d = DiskParams::ultrastar_36z15();
        let c = DirectiveConfig::for_params(&d);
        assert!(c.min_idle_ms >= d.break_even_ms());
        assert!(c.min_idle_ms >= d.spin_down_ms + d.spin_up_ms);
        // Ultrastar: break-even (~15.2 s) dominates the 12.4 s transitions.
        assert!((c.min_idle_ms - d.break_even_ms()).abs() < 1e-9);
        assert_eq!(
            format!("{}", PowerPolicy::Directive(c)),
            format!("Directive(min_idle={}ms)", c.min_idle_ms)
        );
    }
}
