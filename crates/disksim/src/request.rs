//! I/O request traces in the paper's five-field format (§7.1): arrival time
//! (ms), start block, size (bytes), read/write, processor id.

use std::error::Error;
use std::fmt;

/// Logical block size used to express "start block number" in serialized
/// traces (page-block granularity, §7.1).
pub const TRACE_BLOCK_BYTES: u64 = 4096;

/// Read or write request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Read (`R`).
    Read,
    /// Write (`W`).
    Write,
}

impl RequestKind {
    fn letter(self) -> char {
        match self {
            RequestKind::Read => 'R',
            RequestKind::Write => 'W',
        }
    }
}

/// One application-level I/O request against the striped volume.
///
/// The simulator splits it into per-disk sub-requests according to the
/// striping ("start block number: a logical disk block striped over several
/// I/O nodes", §7.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoRequest {
    /// Arrival time in milliseconds from program start.
    pub arrival_ms: f64,
    /// Starting byte offset within the volume.
    pub offset: u64,
    /// Length in bytes (> 0).
    pub len: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Id of the processor that issued the request.
    pub proc_id: u32,
}

/// A whole trace: requests sorted by arrival time.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    requests: Vec<IoRequest>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a trace from requests. Non-monotonic input is handled
    /// explicitly: arrivals are **stable-sorted** (equal-time requests
    /// keep insertion order, so a shuffled trace and its sorted twin
    /// produce bit-identical simulations), and requests the sort cannot
    /// give a meaning to — non-finite arrival times, negative arrival
    /// times, zero-length transfers — are **rejected** up front rather
    /// than left to trip the simulator's ordering assertion mid-run.
    ///
    /// Already-sorted input — the common case: the generator emits
    /// merged-in-order streams, and codec replays preserve order — is
    /// detected in the validation pass and skips the sort entirely, so no
    /// scratch allocation or element moves happen on that path.
    ///
    /// # Panics
    ///
    /// Panics, naming the offending request index, if any arrival time is
    /// NaN/infinite/negative or any length is zero.
    pub fn from_requests(mut requests: Vec<IoRequest>) -> Self {
        let mut sorted = true;
        for (i, r) in requests.iter().enumerate() {
            assert!(
                r.arrival_ms.is_finite() && r.arrival_ms >= 0.0,
                "request {i}: arrival time {} is not a finite non-negative ms value",
                r.arrival_ms
            );
            assert!(r.len > 0, "request {i}: length must be positive");
            if i > 0 && requests[i - 1].arrival_ms.total_cmp(&r.arrival_ms).is_gt() {
                sorted = false;
            }
        }
        if !sorted {
            requests.sort_by(|a, b| a.arrival_ms.total_cmp(&b.arrival_ms));
        }
        Trace { requests }
    }

    /// Appends a request; the caller must keep arrivals non-decreasing or
    /// call [`Trace::sort`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length request or a non-finite/negative arrival.
    pub fn push(&mut self, r: IoRequest) {
        assert!(
            r.arrival_ms.is_finite() && r.arrival_ms >= 0.0,
            "arrival time {} is not a finite non-negative ms value",
            r.arrival_ms
        );
        assert!(r.len > 0, "request length must be positive");
        self.requests.push(r);
    }

    /// Stable-sorts by arrival time.
    pub fn sort(&mut self) {
        self.requests
            .sort_by(|a, b| a.arrival_ms.total_cmp(&b.arrival_ms));
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[IoRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.len).sum()
    }

    /// Last arrival time, or 0 for an empty trace.
    pub fn last_arrival_ms(&self) -> f64 {
        self.requests.last().map_or(0.0, |r| r.arrival_ms)
    }

    /// Merges several traces into one shared-system trace: trace `k`'s
    /// requests keep their arrival times shifted by `k * stagger_ms`, its
    /// offsets are relocated past the previous traces' address ranges (so
    /// independent applications' files do not alias), and its processor
    /// ids are renumbered into a disjoint range.
    pub fn merged(traces: &[Trace], stagger_ms: f64) -> Trace {
        let mut all = Vec::new();
        let mut base_offset = 0u64;
        let mut base_proc = 0u32;
        for (k, t) in traces.iter().enumerate() {
            let mut max_end = 0u64;
            let mut max_proc = 0u32;
            for r in t.requests() {
                max_end = max_end.max(r.offset + r.len);
                max_proc = max_proc.max(r.proc_id);
                all.push(IoRequest {
                    arrival_ms: r.arrival_ms + stagger_ms * k as f64,
                    offset: r.offset + base_offset,
                    len: r.len,
                    kind: r.kind,
                    proc_id: r.proc_id + base_proc,
                });
            }
            base_offset += max_end;
            base_proc += max_proc + 1;
        }
        Trace::from_requests(all)
    }

    /// Serializes in the paper's five-field line format:
    /// `arrival_ms start_block size_bytes R|W proc_id`.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.requests.len() * 32);
        for r in &self.requests {
            out.push_str(&format!(
                "{:.3} {} {} {} {}\n",
                r.arrival_ms,
                r.offset / TRACE_BLOCK_BYTES,
                r.len,
                r.kind.letter(),
                r.proc_id
            ));
        }
        out
    }

    /// Parses the five-field line format produced by [`Trace::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Trace, TraceParseError> {
        let mut requests = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let mut next = |what: &str| {
                fields.next().ok_or_else(|| TraceParseError {
                    line: lineno + 1,
                    message: format!("missing field `{what}`"),
                })
            };
            let arrival_ms: f64 = next("arrival")?.parse().map_err(|_| TraceParseError {
                line: lineno + 1,
                message: "bad arrival time".into(),
            })?;
            let block: u64 = next("block")?.parse().map_err(|_| TraceParseError {
                line: lineno + 1,
                message: "bad start block".into(),
            })?;
            let len: u64 = next("size")?.parse().map_err(|_| TraceParseError {
                line: lineno + 1,
                message: "bad size".into(),
            })?;
            let kind = match next("kind")? {
                "R" => RequestKind::Read,
                "W" => RequestKind::Write,
                other => {
                    return Err(TraceParseError {
                        line: lineno + 1,
                        message: format!("bad request type `{other}`"),
                    })
                }
            };
            let proc_id: u32 = next("proc")?.parse().map_err(|_| TraceParseError {
                line: lineno + 1,
                message: "bad processor id".into(),
            })?;
            requests.push(IoRequest {
                arrival_ms,
                offset: block * TRACE_BLOCK_BYTES,
                len,
                kind,
                proc_id,
            });
        }
        Ok(Trace::from_requests(requests))
    }
}

/// Error from [`Trace::from_text`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for TraceParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: f64, off: u64, len: u64, proc_id: u32) -> IoRequest {
        IoRequest {
            arrival_ms: t,
            offset: off,
            len,
            kind: RequestKind::Read,
            proc_id,
        }
    }

    #[test]
    fn from_requests_sorts() {
        let t = Trace::from_requests(vec![req(5.0, 0, 10, 0), req(1.0, 4096, 10, 0)]);
        assert_eq!(t.requests()[0].arrival_ms, 1.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_bytes(), 20);
        assert_eq!(t.last_arrival_ms(), 5.0);
    }

    #[test]
    fn text_round_trip() {
        let mut t = Trace::new();
        t.push(req(0.0, 0, 32768, 0));
        t.push(IoRequest {
            arrival_ms: 12.5,
            offset: 8192,
            len: 4096,
            kind: RequestKind::Write,
            proc_id: 3,
        });
        let text = t.to_text();
        assert!(text.contains(" W 3"));
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.requests()[1].kind, RequestKind::Write);
        assert_eq!(back.requests()[1].offset, 8192);
        assert_eq!(back.requests()[1].proc_id, 3);
    }

    #[test]
    fn merged_relocates_and_renumbers() {
        let a = Trace::from_requests(vec![req(0.0, 0, 4096, 0), req(10.0, 8192, 4096, 1)]);
        let b = Trace::from_requests(vec![req(5.0, 0, 4096, 0)]);
        let m = Trace::merged(&[a, b], 100.0);
        assert_eq!(m.len(), 3);
        // b's request lands at offset >= a's end, proc 2, time 105.
        let moved = m
            .requests()
            .iter()
            .find(|r| r.proc_id == 2)
            .expect("renumbered request");
        assert!(moved.offset >= 12288);
        assert!((moved.arrival_ms - 105.0).abs() < 1e-9);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let t = Trace::from_text("# header\n\n0.0 0 4096 R 0\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn parse_reports_bad_lines() {
        let e = Trace::from_text("0.0 0 4096 X 0").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("bad request type"));
    }

    #[test]
    #[should_panic]
    fn push_rejects_empty_request() {
        let mut t = Trace::new();
        t.push(req(0.0, 0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "request 1: arrival time NaN")]
    fn from_requests_rejects_nan_arrival() {
        let _ = Trace::from_requests(vec![req(0.0, 0, 10, 0), req(f64::NAN, 4096, 10, 0)]);
    }

    #[test]
    #[should_panic(expected = "not a finite non-negative")]
    fn from_requests_rejects_negative_arrival() {
        let _ = Trace::from_requests(vec![req(-1.0, 0, 10, 0)]);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn from_requests_rejects_zero_length() {
        let _ = Trace::from_requests(vec![req(0.0, 0, 0, 0)]);
    }

    #[test]
    #[should_panic(expected = "not a finite non-negative")]
    fn push_rejects_infinite_arrival() {
        let mut t = Trace::new();
        t.push(req(f64::INFINITY, 0, 10, 0));
    }

    #[test]
    fn from_requests_sort_is_stable_on_equal_arrivals() {
        // Two requests at the same instant keep insertion order, so a
        // shuffled trace sorts to exactly one canonical order.
        let t = Trace::from_requests(vec![
            req(5.0, 0, 10, 0),
            req(1.0, 4096, 10, 1),
            req(1.0, 8192, 10, 2),
        ]);
        let procs: Vec<u32> = t.requests().iter().map(|r| r.proc_id).collect();
        assert_eq!(procs, vec![1, 2, 0]);
    }

    #[test]
    fn from_requests_sorted_input_keeps_exact_order() {
        // Already-sorted input (including equal-arrival runs) must come
        // back untouched — this is the no-sort fast path the streaming
        // adapter relies on.
        let input = vec![
            req(1.0, 0, 10, 3),
            req(1.0, 4096, 10, 1),
            req(2.0, 8192, 10, 2),
            req(2.0, 0, 10, 0),
        ];
        let t = Trace::from_requests(input.clone());
        assert_eq!(t.requests(), &input[..]);
    }
}
