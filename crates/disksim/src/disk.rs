//! Per-disk (per-I/O-node) simulation: service-time accounting, energy
//! integration, and the TPM / DRPM power-management state machines.

use crate::params::{DirectiveConfig, DiskParams, DrpmConfig, PowerPolicy, RaidConfig, TpmConfig};
use crate::stats::{DiskStats, IdleHistogram, Span, SpanState};
use dpm_faults::{FaultInjector, RetryPolicy};
use dpm_prof::DiskStreamMetrics;

/// One contiguous piece of an application request on a single disk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubRequest {
    /// Arrival time (ms).
    pub arrival_ms: f64,
    /// First byte of the piece in the disk's local address space
    /// (`local_block * stripe_unit + offset_within_stripe`).
    pub local_byte: u64,
    /// Length in bytes.
    pub len: u64,
    /// Whether this transfer is tier-migration traffic. Serviced exactly
    /// like application I/O (busy time and energy accrue normally) but
    /// counted in [`DiskStats::migration_requests`] /
    /// [`DiskStats::migration_bytes`] so application-request conservation
    /// stays exact.
    pub migration: bool,
}

/// What servicing one sub-request cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceOutcome {
    /// Completion time (ms).
    pub completion_ms: f64,
    /// Power-management stall charged to this request (spin-up wait,
    /// in-flight RPM transition), in ms.
    pub stall_ms: f64,
    /// Pure service (positioning + transfer) time, in ms.
    pub service_ms: f64,
}

/// Trace-driven model of one disk under a chosen power policy.
///
/// Sub-requests must be fed in non-decreasing arrival order (the per-disk
/// projection of a time-sorted trace). The model is open-loop: arrivals are
/// fixed, and power-management penalties show up as response time, not as
/// shifted arrivals — matching the paper's trace-driven simulator (§7.1).
#[derive(Clone, Debug)]
pub struct DiskSim {
    params: DiskParams,
    policy: PowerPolicy,
    raid: RaidConfig,
    /// Time up to which this disk's behaviour has been decided.
    clock_ms: f64,
    /// Current spindle speed (always `max_rpm` for non-DRPM disks).
    rpm: u32,
    /// Ends of recently serviced byte ranges, one per detected sequential
    /// stream (disk firmware tracks several concurrent sequential streams
    /// for its readahead engine).
    stream_ends: Vec<u64>,
    /// DRPM window accumulators.
    window_requests: u32,
    window_response_ms: f64,
    window_target_ms: f64,
    /// Windows remaining before another speed change is allowed.
    cooldown_windows: u32,
    stats: DiskStats,
    idle_hist: IdleHistogram,
    finished: bool,
    /// Optional power-state timeline; `None` unless recording is enabled.
    timeline: Option<Vec<Span>>,
    /// Wall-clock cursor for timeline spans (advances with each accrual).
    span_cursor: f64,
    /// Identity `(run, disk)` stamped onto emitted `disk_state` events.
    obs_identity: (u64, usize),
    /// Last power state announced to the instrumentation layer.
    obs_state: Option<SpanState>,
    /// Seeded fault decision stream; `None` = the fault-free fast path.
    injector: Option<FaultInjector>,
    /// Whether the stuck-spindle fault has been counted yet (it is a
    /// per-disk condition, counted once on first suppression).
    stuck_reported: bool,
    /// Streaming metrics (service/spin-up histograms, queue gauge, RPM
    /// residency) accumulated in O(1) memory from the request stream.
    stream: DiskStreamMetrics,
}

impl DiskSim {
    /// Creates a disk in the idle, full-speed state at time zero.
    pub fn new(params: DiskParams, policy: PowerPolicy) -> Self {
        DiskSim::with_raid(params, policy, RaidConfig::single())
    }

    /// Creates an I/O node backed by a RAID set of identical disks.
    pub fn with_raid(params: DiskParams, policy: PowerPolicy, raid: RaidConfig) -> Self {
        DiskSim {
            rpm: params.max_rpm,
            params,
            policy,
            raid,
            clock_ms: 0.0,
            stream_ends: Vec::new(),
            window_requests: 0,
            window_response_ms: 0.0,
            window_target_ms: 0.0,
            cooldown_windows: 0,
            stats: DiskStats::default(),
            idle_hist: IdleHistogram::default(),
            finished: false,
            timeline: None,
            span_cursor: 0.0,
            obs_identity: (0, 0),
            obs_state: None,
            injector: None,
            stuck_reported: false,
            stream: DiskStreamMetrics::new(),
        }
    }

    /// Arms fault injection: subsequent services consult `injector` at
    /// every decision point (service attempt, spin-up, RPM transition).
    /// Without an injector the behaviour is bit-identical to the
    /// fault-free simulator.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Stamps the `(run, disk)` identity carried by this disk's
    /// `disk_state` events, so one event stream can hold several
    /// interleaved simulations.
    pub fn set_obs_identity(&mut self, run: u64, disk: usize) {
        self.obs_identity = (run, disk);
    }

    /// Enables power-state timeline recording (off by default; costs one
    /// `Span` per accrual).
    pub fn record_timeline(&mut self) {
        self.timeline = Some(Vec::new());
    }

    /// The recorded timeline, if enabled.
    pub fn timeline(&self) -> Option<&[Span]> {
        self.timeline.as_deref()
    }

    fn push_span(&mut self, ms: f64, state: SpanState) {
        let start = self.span_cursor;
        self.span_cursor += ms.max(0.0);
        if ms <= 0.0 {
            return;
        }
        if let Some(tl) = &mut self.timeline {
            tl.push(Span {
                start_ms: start,
                end_ms: self.span_cursor,
                state,
            });
        }
        // Power-state transition events: one per state *change* (including
        // RPM level changes), so the full timeline is reconstructible from
        // the event stream alone.
        if dpm_obs::enabled() && self.obs_state != Some(state) {
            self.obs_state = Some(state);
            let (run, disk) = self.obs_identity;
            let (name, rpm) = match state {
                SpanState::Busy => ("busy", self.rpm),
                SpanState::Idle(rpm) => ("idle", rpm),
                SpanState::Standby => ("standby", 0),
                SpanState::Transition => ("transition", self.rpm),
            };
            dpm_obs::emit(
                dpm_obs::kind::DISK_STATE,
                name,
                &[
                    ("run", run.into()),
                    ("disk", disk.into()),
                    ("at_ms", start.into()),
                    ("rpm", rpm.into()),
                ],
            );
        }
    }

    /// The disk's statistics so far. Complete only after [`DiskSim::finish`].
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// The idle-period histogram.
    pub fn idle_histogram(&self) -> &IdleHistogram {
        &self.idle_hist
    }

    /// The streaming metric set accumulated so far.
    pub fn stream_metrics(&self) -> &DiskStreamMetrics {
        &self.stream
    }

    /// Current spindle speed.
    pub fn rpm(&self) -> u32 {
        self.rpm
    }

    /// Services one sub-request, returning its completion time and cost
    /// breakdown.
    ///
    /// # Panics
    ///
    /// Panics if called after [`DiskSim::finish`] or with an arrival that
    /// precedes the previous one.
    pub fn service(&mut self, r: &SubRequest) -> ServiceOutcome {
        assert!(!self.finished, "disk already finished");
        assert!(r.len > 0, "sub-request length must be positive");
        self.stream.queue.on_arrival(r.arrival_ms);
        let gap = r.arrival_ms - self.clock_ms;
        let mut ready_ms = r.arrival_ms;
        let mut stall = 0.0;
        if gap > 0.0 {
            self.idle_hist.record(gap);
            let extra = self.pass_idle(gap, true);
            ready_ms += extra;
            stall = extra;
            if extra > 0.0 {
                // Power-management stall suffered by this request: spin-up
                // wait or in-flight RPM transition.
                self.stream.spin_up_us.record_ms(extra);
            }
        }
        // If the disk was still busy at arrival, service starts when free.
        let start = ready_ms.max(self.clock_ms);
        let sequential = self.note_stream(r.local_byte, r.len);
        // RAID-0 members transfer their chunk shares in parallel; the node
        // completes when the most-loaded member does.
        let member_bytes = self.raid.max_member_bytes(r.len);
        let mut svc = self.params.service_ms(member_bytes, self.rpm, sequential);
        let jitter = self.injector.as_mut().map_or(0.0, FaultInjector::jitter_ms);
        if jitter > 0.0 {
            svc += jitter;
            let at = self.span_cursor;
            self.emit_fault(
                dpm_obs::kind::FAULT,
                "latency_jitter",
                at,
                &[("jitter_ms", jitter.into())],
            );
        }
        // Transient-error retry loop: a failed attempt still occupies the
        // heads for the full service time, then waits out a capped
        // exponential backoff. A request that exhausts its retries is
        // re-queued behind the degraded-disk recovery delay and then
        // forced through — work is never dropped.
        self.stream.service_us.record_ms(svc);
        let mut elapsed = 0.0;
        let mut attempt = 0u32;
        loop {
            let failed = self
                .injector
                .as_mut()
                .is_some_and(FaultInjector::transient_error);
            self.accrue_busy(svc);
            elapsed += svc;
            if !failed {
                break;
            }
            let _prof = dpm_prof::scope("fault_retry");
            self.stats.faults += 1;
            let at = self.span_cursor;
            self.emit_fault(dpm_obs::kind::FAULT, "transient_error", at, &[]);
            let rp: RetryPolicy = *self
                .injector
                .as_ref()
                .expect("fault without injector")
                .retry();
            if attempt < rp.max_retries {
                let backoff = rp.backoff_ms(attempt);
                self.stats.retries += 1;
                self.emit_fault(
                    dpm_obs::kind::RETRY,
                    "backoff",
                    at,
                    &[("attempt", attempt.into()), ("backoff_ms", backoff.into())],
                );
                self.accrue_idle(backoff);
                elapsed += backoff;
                attempt += 1;
            } else {
                self.stats.requeues += 1;
                self.mark_degraded(at);
                self.accrue_idle(rp.requeue_delay_ms);
                elapsed += rp.requeue_delay_ms;
                self.accrue_busy(svc);
                elapsed += svc;
                break;
            }
        }
        let completion = start + elapsed;
        self.stream.queue.on_completion(completion);
        if sequential && !r.migration {
            self.stats.sequential_requests += 1;
        }
        stall += elapsed - svc;
        if r.migration {
            self.stats.migration_requests += 1;
            self.stats.migration_bytes += r.len;
        } else {
            self.stats.requests += 1;
            self.stats.bytes += r.len;
        }
        self.clock_ms = completion;
        // Timeout accounting: response past the plan's budget is counted
        // (and reported) but never cancelled — the trace-driven model has
        // no caller to hand a cancellation to, so a timeout is an
        // observation, not a control action.
        if let Some(rp) = self.injector.as_ref().map(|i| *i.retry()) {
            let response = completion - r.arrival_ms;
            if rp.timeout_ms > 0.0 && response > rp.timeout_ms {
                self.stats.timeouts += 1;
                self.emit_fault(
                    dpm_obs::kind::FAULT,
                    "timeout",
                    completion,
                    &[("response_ms", response.into())],
                );
            }
        }
        // DRPM window bookkeeping.
        if let PowerPolicy::Drpm(cfg) = self.policy {
            let target = self
                .params
                .service_ms(r.len, self.params.max_rpm, sequential);
            self.window_response_ms += completion - r.arrival_ms;
            self.window_target_ms += target;
            self.window_requests += 1;
            if self.window_requests >= cfg.window_size {
                self.window_decision(&cfg);
            }
        }
        ServiceOutcome {
            completion_ms: completion,
            stall_ms: stall,
            service_ms: svc,
        }
    }

    /// Accounts the trailing idle period up to `makespan_ms` and freezes the
    /// disk. Idempotent per disk; further [`DiskSim::service`] calls panic.
    pub fn finish(&mut self, makespan_ms: f64) {
        assert!(!self.finished, "disk already finished");
        let gap = makespan_ms - self.clock_ms;
        if gap > 0.0 {
            self.idle_hist.record(gap);
            let _ = self.pass_idle(gap, false);
            self.clock_ms = makespan_ms;
        }
        self.finished = true;
    }

    /// Simulates an idle gap of `gap` ms under the power policy, accruing
    /// energy and state changes. Returns the extra wait (ms past the end of
    /// the gap) before the disk can service, caused by an in-flight
    /// transition or a required spin-up. `request_follows` is false for the
    /// trailing gap at end of trace (no spin-up is charged then).
    fn pass_idle(&mut self, gap: f64, request_follows: bool) -> f64 {
        match self.policy {
            PowerPolicy::None => {
                self.accrue_idle(gap);
                0.0
            }
            PowerPolicy::Tpm(cfg) => self.pass_idle_tpm(gap, request_follows, &cfg),
            PowerPolicy::Drpm(cfg) => self.pass_idle_drpm(gap, &cfg),
            PowerPolicy::Directive(cfg) => self.pass_idle_directive(gap, request_follows, &cfg),
        }
    }

    /// Compiler-directed power management: the directives this gap would
    /// carry have been *verified* (`dpm_analyze::verify_hints`), so their
    /// runtime effect is fully determined by the gap itself — a window at
    /// least `min_idle_ms` long spins down at its start, and when a
    /// request follows, the pre-activation spin-up completes exactly at
    /// the gap end (zero reactive stall). Shorter windows carry no
    /// directives and idle at full speed. Spin-up fault injection is not
    /// consulted here: the directive gate runs under the zero-fault plan,
    /// and a verified directive set makes no claim about failing spindles.
    fn pass_idle_directive(
        &mut self,
        gap: f64,
        request_follows: bool,
        cfg: &DirectiveConfig,
    ) -> f64 {
        let transitions = self.params.spin_down_ms
            + if request_follows {
                self.params.spin_up_ms
            } else {
                0.0
            };
        if gap < cfg.min_idle_ms || gap < transitions {
            self.accrue_idle(gap);
            return 0.0;
        }
        // Spin down at the window start.
        self.stats.spin_downs += 1;
        self.stats.transition_ms += self.params.spin_down_ms;
        self.stats.energy_j += self.members() * self.params.spin_down_energy_j;
        self.push_span(self.params.spin_down_ms, SpanState::Transition);
        self.accrue_standby(gap - transitions);
        if request_follows {
            // Pre-activation: the spin-up overlaps the tail of the window.
            self.stats.spin_ups += 1;
            self.stats.transition_ms += self.params.spin_up_ms;
            self.stats.energy_j += self.members() * self.params.spin_up_energy_j;
            self.push_span(self.params.spin_up_ms, SpanState::Transition);
        }
        0.0
    }

    fn pass_idle_tpm(&mut self, gap: f64, request_follows: bool, cfg: &TpmConfig) -> f64 {
        if gap <= cfg.spin_down_timeout_ms {
            self.accrue_idle(gap);
            return 0.0;
        }
        // Compiler-directed mode: the next access time is known, so an
        // unprofitable spin-down (one whose standby period cannot cover
        // the transitions) is simply not issued.
        if cfg.proactive
            && request_follows
            && gap < cfg.spin_down_timeout_ms + self.params.spin_down_ms + self.params.spin_up_ms
        {
            self.accrue_idle(gap);
            return 0.0;
        }
        // Idle until the timeout fires, then spin down.
        self.accrue_idle(cfg.spin_down_timeout_ms);
        self.stats.spin_downs += 1;
        self.stats.transition_ms += self.params.spin_down_ms;
        self.stats.energy_j += self.members() * self.params.spin_down_energy_j;
        self.push_span(self.params.spin_down_ms, SpanState::Transition);
        let after_timeout = gap - cfg.spin_down_timeout_ms;
        let mut extra = 0.0;
        let mut standby = 0.0;
        if after_timeout < self.params.spin_down_ms {
            // The next arrival lands mid-spin-down: it waits for the
            // spin-down to complete before the spin-up can start.
            extra += self.params.spin_down_ms - after_timeout;
        } else {
            standby = after_timeout - self.params.spin_down_ms;
        }
        if request_follows {
            if cfg.proactive {
                // Compiler-issued spin-up call: the spin-up overlaps the
                // tail of the standby period instead of stalling the
                // request; only the unhidden remainder is a stall.
                let hidden = standby.min(self.params.spin_up_ms);
                standby -= hidden;
                extra += self.params.spin_up_ms - hidden;
            } else {
                extra += self.params.spin_up_ms;
            }
        }
        self.accrue_standby(standby);
        if request_follows {
            // Injected spin-up failures: each failed attempt burns a full
            // spin-up (time and energy) and the spindle falls back to
            // standby for a backoff before the next try; exhaustion marks
            // the disk degraded and re-queues behind the recovery delay.
            // Failed attempts are always unhidden stall — even a
            // compiler-issued proactive spin-up cannot predict a failing
            // spindle.
            let mut attempt = 0u32;
            while self
                .injector
                .as_mut()
                .is_some_and(FaultInjector::spin_up_fails)
            {
                let _prof = dpm_prof::scope("fault_retry");
                self.stats.faults += 1;
                let at = self.span_cursor;
                self.emit_fault(dpm_obs::kind::FAULT, "spin_up_failure", at, &[]);
                self.stats.transition_ms += self.params.spin_up_ms;
                self.stats.energy_j += self.members() * self.params.spin_up_energy_j;
                self.push_span(self.params.spin_up_ms, SpanState::Transition);
                extra += self.params.spin_up_ms;
                let rp: RetryPolicy = *self
                    .injector
                    .as_ref()
                    .expect("fault without injector")
                    .retry();
                if attempt < rp.max_retries {
                    let backoff = rp.backoff_ms(attempt);
                    self.stats.retries += 1;
                    self.emit_fault(
                        dpm_obs::kind::RETRY,
                        "backoff",
                        at,
                        &[("attempt", attempt.into()), ("backoff_ms", backoff.into())],
                    );
                    self.accrue_standby(backoff);
                    extra += backoff;
                    attempt += 1;
                } else {
                    self.stats.requeues += 1;
                    self.mark_degraded(at);
                    self.accrue_standby(rp.requeue_delay_ms);
                    extra += rp.requeue_delay_ms;
                    break; // the forced (successful) spin-up follows
                }
            }
            self.stats.spin_ups += 1;
            self.stats.transition_ms += self.params.spin_up_ms;
            self.stats.energy_j += self.members() * self.params.spin_up_energy_j;
            self.push_span(self.params.spin_up_ms, SpanState::Transition);
        }
        extra
    }

    fn pass_idle_drpm(&mut self, gap: f64, cfg: &DrpmConfig) -> f64 {
        if gap <= cfg.idle_ramp_threshold_ms {
            self.accrue_idle(gap);
            return 0.0;
        }
        // A stuck spindle cannot change speed: the ramp that would have
        // started here is suppressed and the whole gap is idled away at
        // the current level.
        if self.stuck() {
            self.accrue_idle(gap);
            return 0.0;
        }
        // In compiler-directed mode the end of the idle period is known:
        // reserve enough of the gap's tail to ramp back to full speed just
        // in time, and only ramp down as far as can be restored.
        let mut budget = gap;
        let levels_below_max = (self.params.max_rpm - self.rpm) / cfg.rpm_step;
        if cfg.proactive {
            // Pay for the eventual ramp-up from wherever we will end; we
            // conservatively reserve as we descend, level by level, below.
            budget -= f64::from(levels_below_max) * cfg.transition_ms_per_step;
            if budget <= cfg.idle_ramp_threshold_ms {
                // Not enough room to do anything but restore speed.
                self.ramp_up_to_max(gap, cfg);
                return 0.0;
            }
        }
        // Idle at the current level until the ramp threshold, then step
        // down one level per `step_down_idle_ms` until the minimum.
        let mut consumed = cfg.idle_ramp_threshold_ms;
        self.accrue_idle(cfg.idle_ramp_threshold_ms);
        loop {
            let at_floor = self.rpm < cfg.min_rpm + cfg.rpm_step;
            // In compiler-directed mode a further step down must also fit
            // its matching step back up within the remaining budget; a
            // reactive disk just starts the transition and lets an early
            // arrival wait out the remainder.
            let fits = consumed + 2.0 * cfg.transition_ms_per_step <= budget;
            if at_floor || (cfg.proactive && !fits) {
                if cfg.proactive {
                    // Dwell, then ramp back to max exactly at the gap end.
                    let up_ms = f64::from((self.params.max_rpm - self.rpm) / cfg.rpm_step)
                        * cfg.transition_ms_per_step;
                    let dwell = (gap - consumed - up_ms).max(0.0);
                    self.accrue_idle(dwell);
                    consumed += dwell;
                    self.ramp_up_to_max(gap - consumed, cfg);
                    return 0.0;
                }
                self.accrue_idle(gap - consumed);
                return 0.0;
            }
            // Transition one level down.
            let target = self.rpm - cfg.rpm_step;
            let t = cfg.transition_ms_per_step;
            let overrun = (consumed + t) - gap;
            self.accrue_transition(t, self.rpm.max(target));
            self.stats.speed_changes += 1;
            self.rpm = target;
            if overrun > 0.0 {
                // The arrival lands mid-transition and waits for it.
                return overrun;
            }
            consumed += t;
            if cfg.proactive {
                budget -= cfg.transition_ms_per_step; // reserve the step back up
            }
            // Dwell at this level before considering another step.
            let dwell = cfg.step_down_idle_ms.min((gap - consumed).max(0.0));
            self.accrue_idle(dwell);
            consumed += dwell;
            if consumed >= gap {
                return 0.0;
            }
        }
    }

    /// Proactive ramp back to maximum RPM at the end of a known idle gap;
    /// `avail_ms` is the remaining idle time (any shortfall is idled away
    /// first, any surplus is spent idling at the current level).
    fn ramp_up_to_max(&mut self, avail_ms: f64, cfg: &DrpmConfig) {
        let levels = (self.params.max_rpm - self.rpm) / cfg.rpm_step;
        if levels == 0 {
            self.accrue_idle(avail_ms.max(0.0));
            return;
        }
        let up_ms = f64::from(levels) * cfg.transition_ms_per_step;
        let slack = avail_ms - up_ms;
        if slack > 0.0 {
            self.accrue_idle(slack);
        }
        self.accrue_transition(up_ms, self.params.max_rpm);
        self.stats.speed_changes += u64::from(levels);
        self.rpm = self.params.max_rpm;
    }

    /// DRPM end-of-window decision: compare the window's mean response to
    /// the full-speed estimate and step the spindle up or down one level.
    ///
    /// A step *down* must pass three gates: (a) the cooldown since the last
    /// change has expired, (b) the observed slowdown is comfortable
    /// (`< min_slowdown`), and (c) the slowdown *predicted* at the lower
    /// level — scaling by the RPM ratio — still fits under `max_slowdown`.
    /// Gate (c) is what keeps the controller from oscillating between two
    /// levels and piling queueing delay onto every window.
    fn window_decision(&mut self, cfg: &DrpmConfig) {
        let slowdown = if self.window_target_ms > 0.0 {
            self.window_response_ms / self.window_target_ms
        } else {
            1.0
        };
        self.window_requests = 0;
        self.window_response_ms = 0.0;
        self.window_target_ms = 0.0;
        if self.cooldown_windows > 0 {
            self.cooldown_windows -= 1;
            return;
        }
        if slowdown > cfg.max_slowdown && self.rpm < self.params.max_rpm {
            if self.stuck() {
                return;
            }
            let target = (self.rpm + cfg.rpm_step).min(self.params.max_rpm);
            self.transition_now(self.rpm, target, cfg);
            self.cooldown_windows = 2;
        } else if slowdown < cfg.min_slowdown && self.rpm >= cfg.min_rpm + cfg.rpm_step {
            let target = self.rpm - cfg.rpm_step;
            let predicted = slowdown * f64::from(self.rpm) / f64::from(target);
            if predicted <= cfg.max_slowdown {
                if self.stuck() {
                    return;
                }
                self.transition_now(self.rpm, target, cfg);
                self.cooldown_windows = 2;
            }
        }
    }

    /// An immediate (busy-time) RPM transition; the time is spent on the
    /// disk's clock, delaying subsequent requests.
    fn transition_now(&mut self, from: u32, to: u32, cfg: &DrpmConfig) {
        let steps = (from.abs_diff(to) / cfg.rpm_step).max(1);
        let t = cfg.transition_ms_per_step * f64::from(steps);
        self.accrue_transition(t, from.max(to));
        self.stats.speed_changes += 1;
        self.rpm = to;
        self.clock_ms += t;
    }

    /// Number of concurrent sequential streams the firmware tracks.
    const STREAMS: usize = 32;

    /// Records the serviced range in the stream table and reports whether
    /// it continued an existing sequential stream.
    fn note_stream(&mut self, local_byte: u64, len: u64) -> bool {
        if let Some(slot) = self.stream_ends.iter_mut().find(|e| **e == local_byte) {
            *slot = local_byte + len;
            return true;
        }
        if self.stream_ends.len() == Self::STREAMS {
            self.stream_ends.remove(0);
        }
        self.stream_ends.push(local_byte + len);
        false
    }

    /// The node's disks spin in lock-step, so power scales with the member
    /// count.
    fn members(&self) -> f64 {
        f64::from(self.raid.members)
    }

    fn accrue_idle(&mut self, ms: f64) {
        debug_assert!(ms >= -1e-9);
        let ms = ms.max(0.0);
        self.stream.residency.accrue(self.rpm, ms);
        self.stats.idle_ms += ms;
        self.stats.energy_j +=
            self.members() * self.params.idle_power_at_rpm_w(self.rpm) * ms / 1000.0;
        self.push_span(ms, SpanState::Idle(self.rpm));
    }

    fn accrue_busy(&mut self, ms: f64) {
        self.stream.residency.accrue(self.rpm, ms);
        self.stats.busy_ms += ms;
        self.stats.energy_j +=
            self.members() * self.params.active_power_at_rpm_w(self.rpm) * ms / 1000.0;
        self.push_span(ms, SpanState::Busy);
    }

    fn accrue_transition(&mut self, ms: f64, at_rpm: u32) {
        self.stats.transition_ms += ms;
        self.stats.energy_j +=
            self.members() * self.params.active_power_at_rpm_w(at_rpm) * ms / 1000.0;
        self.push_span(ms, SpanState::Transition);
    }

    fn accrue_standby(&mut self, ms: f64) {
        if ms <= 0.0 {
            return;
        }
        self.stats.standby_ms += ms;
        self.stats.energy_j += self.members() * self.params.standby_power_w * ms / 1000.0;
        self.push_span(ms, SpanState::Standby);
    }

    /// Whether this disk's spindle is stuck at its current RPM. Counted
    /// as a fault (once) the first time it actually suppresses a speed
    /// change, so fault-free runs of a healthy plan stay clean.
    fn stuck(&mut self) -> bool {
        if !self.injector.as_ref().is_some_and(FaultInjector::stuck_rpm) {
            return false;
        }
        if !self.stuck_reported {
            self.stuck_reported = true;
            self.stats.faults += 1;
            let at = self.span_cursor;
            self.emit_fault(
                dpm_obs::kind::FAULT,
                "stuck_rpm",
                at,
                &[("rpm", self.rpm.into())],
            );
        }
        true
    }

    /// Marks the disk degraded (idempotent) and emits the typed event on
    /// the first transition.
    fn mark_degraded(&mut self, at_ms: f64) {
        if self.stats.degraded {
            return;
        }
        self.stats.degraded = true;
        self.emit_fault(dpm_obs::kind::DEGRADE, "marked", at_ms, &[]);
    }

    /// Emits one typed fault/retry/degrade event carrying this disk's
    /// `(run, disk)` identity and the accounted wall position.
    fn emit_fault(&self, kind: &str, name: &str, at_ms: f64, extra: &[(&str, dpm_obs::Value)]) {
        if !dpm_obs::enabled() {
            return;
        }
        let (run, disk) = self.obs_identity;
        let mut fields: Vec<(&str, dpm_obs::Value)> = vec![
            ("run", run.into()),
            ("disk", disk.into()),
            ("at_ms", at_ms.into()),
        ];
        fields.extend_from_slice(extra);
        dpm_obs::emit(kind, name, &fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DiskParams {
        DiskParams::ultrastar_36z15()
    }

    fn sub(t: f64, byte: u64, len: u64) -> SubRequest {
        SubRequest {
            arrival_ms: t,
            local_byte: byte,
            len,
            migration: false,
        }
    }

    #[test]
    fn base_energy_is_idle_plus_active() {
        let mut d = DiskSim::new(params(), PowerPolicy::None);
        let done = d.service(&sub(1000.0, 0, 32 * 1024)).completion_ms;
        d.finish(done + 1000.0);
        let s = d.stats();
        let svc = params().service_ms(32 * 1024, 15_000, false);
        assert!((s.busy_ms - svc).abs() < 1e-9);
        assert!((s.idle_ms - 2000.0).abs() < 1e-9);
        let expect = 10.2 * 2.0 + 13.5 * svc / 1000.0;
        assert!(
            (s.energy_j - expect).abs() < 1e-6,
            "{} vs {expect}",
            s.energy_j
        );
    }

    #[test]
    fn sequential_requests_skip_positioning() {
        let mut d = DiskSim::new(params(), PowerPolicy::None);
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        let c2 = d.service(&sub(c1, 1024, 1024)).completion_ms;
        assert_eq!(d.stats().sequential_requests, 1);
        let t_seq = params().service_ms(1024, 15_000, true);
        assert!((c2 - c1 - t_seq).abs() < 1e-9);
    }

    #[test]
    fn queueing_delays_start() {
        let mut d = DiskSim::new(params(), PowerPolicy::None);
        let c1 = d.service(&sub(0.0, 0, 1024 * 1024)).completion_ms;
        // Second request arrives while the first is in service.
        let c2 = d.service(&sub(1.0, 1 << 30, 1024)).completion_ms;
        assert!(c2 > c1);
        assert!((c2 - c1 - params().service_ms(1024, 15_000, false)).abs() < 1e-9);
    }

    #[test]
    fn tpm_spins_down_after_long_idle() {
        let mut d = DiskSim::new(params(), PowerPolicy::Tpm(TpmConfig::default()));
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        // 100 s gap: timeout (15.2 s) + spin-down + standby, then spin-up.
        let c2 = d.service(&sub(c1 + 100_000.0, 1 << 30, 1024)).completion_ms;
        let s = d.stats();
        assert_eq!(s.spin_downs, 1);
        assert_eq!(s.spin_ups, 1);
        assert!(s.standby_ms > 0.0);
        // The response includes the 10.9 s spin-up.
        assert!(c2 - (c1 + 100_000.0) > 10_900.0 - 1e-9);
        d.finish(c2);
    }

    #[test]
    fn tpm_short_idle_does_nothing() {
        let mut d = DiskSim::new(params(), PowerPolicy::Tpm(TpmConfig::default()));
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        let _ = d.service(&sub(c1 + 1_000.0, 1 << 30, 1024));
        assert_eq!(d.stats().spin_downs, 0);
        assert_eq!(d.stats().standby_ms, 0.0);
    }

    #[test]
    fn tpm_saves_energy_on_long_idle_vs_base() {
        let run = |policy| {
            let mut d = DiskSim::new(params(), policy);
            let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
            let c2 = d.service(&sub(c1 + 200_000.0, 1 << 30, 1024)).completion_ms;
            d.finish(c2);
            d.stats().energy_j
        };
        let base = run(PowerPolicy::None);
        let tpm = run(PowerPolicy::Tpm(TpmConfig::default()));
        assert!(tpm < base, "tpm {tpm} >= base {base}");
    }

    #[test]
    fn tpm_trailing_idle_spins_down_without_spin_up() {
        let mut d = DiskSim::new(params(), PowerPolicy::Tpm(TpmConfig::default()));
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        d.finish(c1 + 500_000.0);
        let s = d.stats();
        assert_eq!(s.spin_downs, 1);
        assert_eq!(s.spin_ups, 0);
    }

    #[test]
    fn directive_long_idle_spins_down_without_stall() {
        let cfg = DirectiveConfig::for_params(&params());
        let mut d = DiskSim::new(params(), PowerPolicy::Directive(cfg));
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        // 100 s window: spin-down at the window start, standby, then a
        // pre-activated spin-up ending exactly at the next arrival.
        let a2 = c1 + 100_000.0;
        let out = d.service(&sub(a2, 1 << 30, 1024));
        let s = d.stats();
        assert_eq!(s.spin_downs, 1);
        assert_eq!(s.spin_ups, 1);
        assert!((out.stall_ms - 0.0).abs() < 1e-9, "stall {}", out.stall_ms);
        let p = params();
        let expect_standby = 100_000.0 - p.spin_down_ms - p.spin_up_ms;
        assert!((s.standby_ms - expect_standby).abs() < 1e-9);
        // The request completes exactly one service time after arrival.
        let svc = p.service_ms(1024, 15_000, false);
        assert!((out.completion_ms - a2 - svc).abs() < 1e-9);
        d.finish(out.completion_ms);
    }

    #[test]
    fn directive_short_idle_stays_at_full_speed() {
        let cfg = DirectiveConfig::for_params(&params());
        let mut d = DiskSim::new(params(), PowerPolicy::Directive(cfg));
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        // Just under the break-even window: no directive, pure idle.
        let _ = d.service(&sub(c1 + cfg.min_idle_ms - 1.0, 1 << 30, 1024));
        let s = d.stats();
        assert_eq!(s.spin_downs, 0);
        assert_eq!(s.standby_ms, 0.0);
    }

    #[test]
    fn directive_trailing_idle_spins_down_without_spin_up() {
        let cfg = DirectiveConfig::for_params(&params());
        let mut d = DiskSim::new(params(), PowerPolicy::Directive(cfg));
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        d.finish(c1 + 100_000.0);
        let s = d.stats();
        assert_eq!(s.spin_downs, 1);
        assert_eq!(s.spin_ups, 0);
        let expect_standby = 100_000.0 - params().spin_down_ms;
        assert!((s.standby_ms - expect_standby).abs() < 1e-9);
    }

    #[test]
    fn directive_beats_reactive_tpm_on_long_idle() {
        let run = |policy| {
            let mut d = DiskSim::new(params(), policy);
            let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
            let c2 = d.service(&sub(c1 + 200_000.0, 1 << 30, 1024)).completion_ms;
            d.finish(c2);
            (d.stats().energy_j, c2)
        };
        let (base_e, _) = run(PowerPolicy::None);
        let (tpm_e, tpm_end) = run(PowerPolicy::Tpm(TpmConfig::default()));
        let cfg = DirectiveConfig::for_params(&params());
        let (dir_e, dir_end) = run(PowerPolicy::Directive(cfg));
        // The static policy spins down immediately (no timeout wait) and
        // never stalls the request (no reactive spin-up).
        assert!(dir_e < tpm_e, "directive {dir_e} >= tpm {tpm_e}");
        assert!(dir_e < base_e, "directive {dir_e} >= base {base_e}");
        assert!(
            dir_end < tpm_end,
            "directive end {dir_end} >= tpm {tpm_end}"
        );
    }

    #[test]
    fn drpm_ramps_down_during_long_idle() {
        let mut d = DiskSim::new(params(), PowerPolicy::Drpm(DrpmConfig::default()));
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        d.finish(c1 + 60_000.0);
        assert_eq!(d.rpm(), 3_000);
        assert!(d.stats().speed_changes >= 4);
    }

    #[test]
    fn drpm_long_idle_beats_base_energy() {
        let run = |policy| {
            let mut d = DiskSim::new(params(), policy);
            let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
            d.finish(c1 + 60_000.0);
            d.stats().energy_j
        };
        let base = run(PowerPolicy::None);
        let drpm = run(PowerPolicy::Drpm(DrpmConfig::default()));
        assert!(drpm < 0.6 * base, "drpm {drpm} vs base {base}");
    }

    #[test]
    fn drpm_services_slower_at_low_rpm() {
        let mut d = DiskSim::new(params(), PowerPolicy::Drpm(DrpmConfig::default()));
        let c1 = d.service(&sub(0.0, 0, 32 * 1024)).completion_ms;
        // Long idle drops to 3 000 rpm; the next service is slower than the
        // full-speed one.
        let a2 = c1 + 60_000.0;
        let c2 = d.service(&sub(a2, 1 << 30, 32 * 1024)).completion_ms;
        let slow = c2 - a2;
        let full = params().service_ms(32 * 1024, 15_000, false);
        assert!(slow > 2.0 * full, "slow {slow} vs full {full}");
    }

    #[test]
    fn drpm_window_ramps_back_up_under_load() {
        let cfg = DrpmConfig::default();
        let mut d = DiskSim::new(params(), PowerPolicy::Drpm(cfg));
        // Drop to the floor with one long idle.
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        let mut t = c1 + 120_000.0;
        assert!(d.rpm() > 0);
        // Then a dense burst: after enough windows the disk climbs back.
        for k in 0..((cfg.window_size as u64) * 6) {
            let c = d.service(&sub(t, (1 << 20) * k, 32 * 1024)).completion_ms;
            t = c + 0.1;
        }
        assert!(d.rpm() > 3_000, "rpm stayed at {}", d.rpm());
        d.finish(t);
    }

    #[test]
    fn histogram_records_gaps() {
        let mut d = DiskSim::new(params(), PowerPolicy::None);
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        let c2 = d.service(&sub(c1 + 5.0, 1 << 20, 1024)).completion_ms;
        let _ = d.service(&sub(c2 + 500.0, 1 << 21, 1024));
        let h = d.idle_histogram();
        assert_eq!(h.total_periods(), 2);
    }

    #[test]
    #[should_panic]
    fn service_after_finish_panics() {
        let mut d = DiskSim::new(params(), PowerPolicy::None);
        d.finish(10.0);
        let _ = d.service(&sub(20.0, 0, 1024));
    }

    #[test]
    fn transient_error_retries_then_succeeds() {
        use dpm_faults::FaultPlan;
        let mut plan = FaultPlan::zero();
        plan.transient_error_rate = 1.0; // every attempt fails
        plan.retry.max_retries = 2;
        let mut d = DiskSim::new(params(), PowerPolicy::None);
        d.set_fault_injector(plan.injector_for_disk(0));
        let out = d.service(&sub(0.0, 0, 1024));
        let s = d.stats();
        // 3 failed attempts (initial + 2 retries), then the forced pass.
        assert_eq!(s.faults, 3);
        assert_eq!(s.retries, 2);
        assert_eq!(s.requeues, 1);
        assert!(s.degraded);
        assert_eq!(s.requests, 1, "work is never dropped");
        let svc = params().service_ms(1024, 15_000, false);
        let backoffs = plan.retry.backoff_ms(0) + plan.retry.backoff_ms(1);
        let expect = 4.0 * svc + backoffs + plan.retry.requeue_delay_ms;
        assert!(
            (out.completion_ms - expect).abs() < 1e-9,
            "{} vs {expect}",
            out.completion_ms
        );
        assert!((out.stall_ms - (expect - svc)).abs() < 1e-9);
        d.finish(out.completion_ms);
    }

    #[test]
    fn timeout_counted_when_response_exceeds_budget() {
        use dpm_faults::FaultPlan;
        let mut plan = FaultPlan::zero();
        plan.transient_error_rate = 1.0;
        plan.retry.max_retries = 0;
        plan.retry.requeue_delay_ms = 5_000.0;
        plan.retry.timeout_ms = 1_000.0;
        let mut d = DiskSim::new(params(), PowerPolicy::None);
        d.set_fault_injector(plan.injector_for_disk(0));
        let _ = d.service(&sub(0.0, 0, 1024));
        assert_eq!(d.stats().timeouts, 1);
    }

    #[test]
    fn spin_up_failure_costs_extra_transitions() {
        use dpm_faults::FaultPlan;
        let clean = {
            let mut d = DiskSim::new(params(), PowerPolicy::Tpm(TpmConfig::default()));
            let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
            let c2 = d.service(&sub(c1 + 100_000.0, 1 << 30, 1024)).completion_ms;
            d.finish(c2);
            (c2, d.stats().clone())
        };
        let mut plan = FaultPlan::zero();
        plan.spin_up_failure_rate = 1.0; // every attempt fails → retries exhaust
        plan.retry.max_retries = 1;
        let mut d = DiskSim::new(params(), PowerPolicy::Tpm(TpmConfig::default()));
        d.set_fault_injector(plan.injector_for_disk(0));
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        let c2 = d.service(&sub(c1 + 100_000.0, 1 << 30, 1024)).completion_ms;
        d.finish(c2);
        let s = d.stats();
        assert_eq!(s.faults, 2); // initial failure + failed retry
        assert_eq!(s.retries, 1);
        assert_eq!(s.requeues, 1);
        assert!(s.degraded);
        assert_eq!(s.spin_ups, clean.1.spin_ups);
        // Two extra full spin-ups of time and energy, plus backoff/requeue.
        assert!(c2 > clean.0 + 2.0 * params().spin_up_ms - 1e-9);
        assert!(s.energy_j > clean.1.energy_j + 2.0 * params().spin_up_energy_j - 1e-6);
    }

    #[test]
    fn stuck_rpm_disk_never_changes_speed() {
        use dpm_faults::FaultPlan;
        let mut plan = FaultPlan::zero();
        plan.stuck_rpm_rate = 1.0;
        let mut d = DiskSim::new(params(), PowerPolicy::Drpm(DrpmConfig::default()));
        d.set_fault_injector(plan.injector_for_disk(0));
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        d.finish(c1 + 60_000.0);
        assert_eq!(d.rpm(), 15_000, "stuck spindle must not ramp");
        assert_eq!(d.stats().speed_changes, 0);
        assert_eq!(d.stats().faults, 1, "stuck condition counted once");
    }

    #[test]
    fn jitter_slows_service_deterministically() {
        use dpm_faults::FaultPlan;
        let mut plan = FaultPlan::zero();
        plan.jitter_max_ms = 10.0;
        let run = |inject: bool| {
            let mut d = DiskSim::new(params(), PowerPolicy::None);
            if inject {
                d.set_fault_injector(plan.injector_for_disk(3));
            }
            d.service(&sub(0.0, 0, 1024)).completion_ms
        };
        let clean = run(false);
        let a = run(true);
        let b = run(true);
        assert!(a >= clean, "jitter only adds latency");
        assert_eq!(a.to_bits(), b.to_bits(), "same seed, same jitter");
    }

    #[test]
    fn zero_plan_injector_is_bit_identical_to_none() {
        use dpm_faults::FaultPlan;
        let run = |inject: bool| {
            let mut d = DiskSim::new(params(), PowerPolicy::Tpm(TpmConfig::default()));
            if inject {
                d.set_fault_injector(FaultPlan::zero().injector_for_disk(0));
            }
            let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
            let c2 = d.service(&sub(c1 + 100_000.0, 1 << 30, 1024)).completion_ms;
            d.finish(c2 + 1_000.0);
            (c2, d.stats().clone())
        };
        let (c_none, s_none) = run(false);
        let (c_zero, s_zero) = run(true);
        assert_eq!(c_none.to_bits(), c_zero.to_bits());
        assert_eq!(s_none.energy_j.to_bits(), s_zero.energy_j.to_bits());
        assert_eq!(s_none.faults, 0);
        assert_eq!(s_zero.faults, 0);
    }

    #[test]
    fn time_conservation() {
        // busy + idle + standby + transition ≈ makespan (per disk), except
        // that waits caused by spin-up overlap are also accounted as
        // transition time (so the sum can exceed makespan only for the
        // spin-up that delayed the final service past its arrival).
        let mut d = DiskSim::new(params(), PowerPolicy::None);
        let c1 = d.service(&sub(0.0, 0, 1024)).completion_ms;
        let c2 = d.service(&sub(c1 + 3_000.0, 1 << 20, 2048)).completion_ms;
        d.finish(c2 + 1_000.0);
        let s = d.stats();
        let sum = s.busy_ms + s.idle_ms + s.standby_ms + s.transition_ms;
        assert!((sum - (c2 + 1_000.0)).abs() < 1e-6, "sum {sum}");
    }
}
