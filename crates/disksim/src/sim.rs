//! The trace-driven multi-disk simulator: splits application requests into
//! per-disk sub-requests according to the striping, feeds each disk's
//! stream through its [`DiskSim`], and aggregates energy and I/O-time
//! statistics.

use crate::disk::{DiskSim, ServiceOutcome, SubRequest};
use crate::params::{DiskParams, MigrationConfig, PowerPolicy, RaidConfig, TierConfig};
use crate::request::Trace;
use crate::stats::{MigrationEvent, SimReport, TierReport, TierStats};
use crate::stream::{RequestStream, TraceAccounting, TraceStream};
use dpm_faults::FaultPlan;
use dpm_layout::{MigrationMove, Striping, TieredVolume};
use dpm_obs::XorShift64Star;
use std::collections::VecDeque;

/// Application requests per streaming window: the bounded unit of work the
/// sharded pass hands to each disk worker, and the only request-shaped
/// memory the event loop ever holds. Resident memory is O(disks × window)
/// regardless of stream length.
const STREAM_WINDOW: usize = 1024;

/// A configured simulator: disk parameters + power policy + striping.
///
/// # Examples
///
/// ```
/// use dpm_disksim::{Simulator, Trace, IoRequest, RequestKind, PowerPolicy, DiskParams};
/// use dpm_layout::Striping;
///
/// let striping = Striping::new(32 * 1024, 4, 0);
/// let sim = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
/// let trace = Trace::from_requests(vec![IoRequest {
///     arrival_ms: 0.0,
///     offset: 0,
///     len: 128 * 1024, // spans all four disks
///     kind: RequestKind::Read,
///     proc_id: 0,
/// }]);
/// let report = sim.run(&trace);
/// assert_eq!(report.per_disk.len(), 4);
/// assert!(report.per_disk.iter().all(|d| d.requests == 1));
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    params: DiskParams,
    policy: PowerPolicy,
    striping: Striping,
    raid: RaidConfig,
    timelines: bool,
    threads: Option<usize>,
    faults: FaultPlan,
    tiers: Option<TierSetup>,
}

/// The heterogeneous-array configuration armed by
/// [`Simulator::with_tiers`]: disk classes per tier plus the placed
/// volume, and optionally the online migration policy.
#[derive(Clone, Debug)]
struct TierSetup {
    config: TierConfig,
    volume: TieredVolume,
    migration: Option<MigrationConfig>,
}

impl Simulator {
    /// Creates a simulator over `striping.num_disks()` identical
    /// single-disk I/O nodes.
    pub fn new(params: DiskParams, policy: PowerPolicy, striping: Striping) -> Self {
        Simulator {
            params,
            policy,
            striping,
            raid: RaidConfig::single(),
            timelines: false,
            threads: None,
            faults: FaultPlan::zero(),
            tiers: None,
        }
    }

    /// Runs over a heterogeneous tiered array instead of the flat striping:
    /// each disk takes its tier's class parameters, addressing goes through
    /// the placed [`TieredVolume`] (the flat striping is ignored for
    /// splitting), and the report carries per-tier aggregates. A
    /// single-class configuration with a whole-array file-order placement
    /// is bit-identical to the flat simulator.
    ///
    /// # Panics
    ///
    /// Panics if `config` and `volume` disagree on geometry.
    #[must_use]
    pub fn with_tiers(mut self, config: TierConfig, volume: TieredVolume) -> Self {
        assert_eq!(
            &config.topology(),
            volume.topology(),
            "tier config and placed volume disagree on geometry"
        );
        self.tiers = Some(TierSetup {
            config,
            volume,
            migration: None,
        });
        self
    }

    /// Arms the online hot/cold migration policy (windowed per-array
    /// access counters, seeded-deterministic promote/demote at window
    /// boundaries, moved bytes charged to the energy model as real disk
    /// traffic). Decisions are taken in the split stage, so the sequence
    /// is identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics unless [`with_tiers`](Self::with_tiers) was called first.
    #[must_use]
    pub fn with_migration(mut self, cfg: MigrationConfig) -> Self {
        self.tiers
            .as_mut()
            .expect("with_migration requires with_tiers")
            .migration = Some(cfg);
        self
    }

    /// The tier configuration in effect, if any.
    pub fn tier_config(&self) -> Option<&TierConfig> {
        self.tiers.as_ref().map(|t| &t.config)
    }

    /// Disks in the simulated array (tier-aware).
    fn num_disks(&self) -> usize {
        self.tiers
            .as_ref()
            .map_or(self.striping.num_disks(), |t| t.config.num_disks())
    }

    fn make_router(&self) -> Option<TierRouter> {
        self.tiers.as_ref().map(|t| TierRouter {
            volume: t.volume.clone(),
            migration: t.migration,
            rng: XorShift64Star::new(t.migration.map_or(0, |m| m.seed)),
            counts: Vec::new(),
            seen: 0,
            processed: 0,
            events: Vec::new(),
        })
    }

    /// Arms a deterministic fault plan. The zero plan (the default) takes
    /// the fault-free fast path and is bit-identical to a simulator that
    /// never heard of faults; any other plan derives one independent
    /// decision stream per disk from `plan.seed`, so reports are
    /// reproducible at any thread count.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The fault plan in effect.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Enables per-disk power-state timeline recording in the report.
    #[must_use]
    pub fn with_timelines(mut self) -> Self {
        self.timelines = true;
        self
    }

    /// Overrides the worker-thread count for [`run`](Self::run). The default
    /// (`None`) follows `DPM_THREADS` / the machine's core count; `1` forces
    /// the serial reference path. Either way the report is bit-identical:
    /// each disk's sub-request stream is serviced in the same order, and the
    /// per-request join replays the serial accumulation order.
    #[must_use]
    pub fn with_exec_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Backs each I/O node with a RAID set (§2's second striping level).
    #[must_use]
    pub fn with_raid(mut self, raid: RaidConfig) -> Self {
        self.raid = raid;
        self
    }

    /// The striping in effect.
    pub fn striping(&self) -> &Striping {
        &self.striping
    }

    /// The power policy in effect.
    pub fn policy(&self) -> PowerPolicy {
        self.policy
    }

    /// Splits one application request into its per-disk contiguous pieces
    /// `(disk, local_byte, len)`. Consecutive stripes on the same disk are
    /// merged into one piece (they are adjacent in the disk's local address
    /// space).
    pub fn split_request(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        self.striping.split_range(offset, len)
    }

    /// Scratch-buffer variant of [`split_request`](Self::split_request):
    /// clears `out` and fills it with the pieces. The simulation hot loops
    /// use this to avoid one `Vec` allocation per application request.
    pub fn split_request_into(&self, offset: u64, len: u64, out: &mut Vec<(usize, u64, u64)>) {
        self.striping.split_range_into(offset, len, out);
    }

    fn make_disks(&self, obs_run: u64) -> Vec<DiskSim> {
        (0..self.num_disks())
            .map(|disk| {
                let params = self
                    .tiers
                    .as_ref()
                    .map_or(self.params, |t| *t.config.params_of_disk(disk));
                let mut d = DiskSim::with_raid(params, self.policy, self.raid);
                d.set_obs_identity(obs_run, disk);
                if self.timelines {
                    d.record_timeline();
                }
                if !self.faults.is_zero() {
                    d.set_fault_injector(self.faults.injector_for_disk(disk));
                }
                d
            })
            .collect()
    }

    fn build_report(
        &self,
        disks: Vec<DiskSim>,
        acc: Accum,
        app_requests: u64,
        obs_run: u64,
        events: Vec<MigrationEvent>,
    ) -> SimReport {
        let idle_histograms = disks.iter().map(|d| d.idle_histogram().clone()).collect();
        let timelines = if self.timelines {
            Some(
                disks
                    .iter()
                    .map(|d| d.timeline().unwrap_or_default().to_vec())
                    .collect(),
            )
        } else {
            None
        };
        let stream = disks.iter().map(|d| d.stream_metrics().clone()).collect();
        let per_disk: Vec<_> = disks.into_iter().map(|d| d.stats().clone()).collect();
        let tiers = match &self.tiers {
            Some(setup) => {
                let cfg = &setup.config;
                let per_tier = (0..cfg.num_tiers())
                    .map(|t| {
                        let lo = cfg.first_disk(t);
                        let slice = &per_disk[lo..lo + cfg.tiers()[t].disks];
                        TierStats {
                            class: cfg.tiers()[t].class.name,
                            disks: cfg.tiers()[t].disks,
                            energy_j: slice.iter().map(|d| d.energy_j).sum(),
                            busy_ms: slice.iter().map(|d| d.busy_ms).sum(),
                            standby_ms: slice.iter().map(|d| d.standby_ms).sum(),
                            spin_downs: slice.iter().map(|d| d.spin_downs).sum(),
                            migration_requests: slice.iter().map(|d| d.migration_requests).sum(),
                            migration_bytes: slice.iter().map(|d| d.migration_bytes).sum(),
                        }
                    })
                    .collect();
                Some(TierReport { per_tier, events })
            }
            None => None,
        };
        SimReport {
            makespan_ms: acc.makespan,
            total_io_time_ms: acc.total_io_time_ms,
            total_response_ms: acc.total_response_ms,
            idle_histograms,
            timelines,
            stream,
            per_disk,
            app_requests,
            obs_run,
            tiers,
        }
    }

    /// Runs the simulation over a (time-sorted) trace: the thin adapter
    /// over [`run_stream`](Self::run_stream), feeding the materialized
    /// requests through the same event loop a live stream would use. The
    /// two paths are bit-identical by construction (and proven so by
    /// `tests/stream_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the trace's arrivals are not non-decreasing.
    pub fn run(&self, trace: &Trace) -> SimReport {
        self.run_stream(&mut TraceStream::new(trace))
    }

    /// Runs the simulation over any [`RequestStream`], pulling one request
    /// at a time: resident memory is O(disks + window) no matter how long
    /// the stream is.
    ///
    /// Dispatches to a per-disk sharded pass over persistent shard workers
    /// (see [`dpm_exec::shard_scope`]) when more than one worker thread is
    /// in effect (see [`with_exec_threads`](Self::with_exec_threads) and
    /// `DPM_THREADS`) and the volume has more than one disk — but only
    /// after probing the stream for a full window of requests: a run that
    /// ends inside its first window cannot amortize a worker lease, so it
    /// takes the serial reference pass no matter the thread count. Both
    /// passes produce bit-identical reports, so the adaptive choice is
    /// invisible in the output.
    ///
    /// # Panics
    ///
    /// Panics if the stream's arrivals are not non-decreasing.
    pub fn run_stream(&self, stream: &mut dyn RequestStream) -> SimReport {
        let obs_run = dpm_obs::next_run_id();
        let _prof = dpm_prof::scope("simulate");
        let mut sp = dpm_obs::span!("simulate");
        sp.add("run", obs_run);
        let threads =
            dpm_exec::effective_threads(self.threads.unwrap_or_else(dpm_exec::num_threads));
        let (report, accounting) = if threads > 1 && self.num_disks() > 1 {
            let mut prefix = Vec::with_capacity(STREAM_WINDOW);
            while prefix.len() < STREAM_WINDOW {
                match stream.next_request() {
                    Some(r) => prefix.push(r),
                    None => break,
                }
            }
            let small = prefix.len() < STREAM_WINDOW;
            let mut probed = crate::stream::Prefetched::new(prefix, stream);
            if small {
                self.run_stream_serial(&mut probed, obs_run)
            } else {
                sp.add("workers", self.num_disks() as u64);
                self.run_stream_sharded(&mut probed, obs_run)
            }
        } else {
            self.run_stream_serial(stream, obs_run)
        };
        sp.add("app_requests", report.app_requests);
        sp.add(
            "sub_requests",
            report.per_disk.iter().map(|d| d.requests).sum(),
        );
        // Debug builds (hence every `cargo test`) verify the conservation
        // laws after every run; see [`crate::invariants`]. Request
        // conservation is judged against the accounting gathered while the
        // stream flowed past — there is no trace to re-walk.
        #[cfg(debug_assertions)]
        match &self.tiers {
            Some(setup) => crate::invariants::assert_clean_streamed_tiered(
                &report,
                &setup.config,
                &self.raid,
                &accounting,
            ),
            None => crate::invariants::assert_clean_streamed(
                &report,
                &self.params,
                &self.raid,
                &accounting,
            ),
        }
        #[cfg(not(debug_assertions))]
        let _ = &accounting;
        report
    }

    /// The serial reference pass: services every sub-request inline, in
    /// request order, pieces in `(disk, local_byte)` order within a request.
    fn run_stream_serial(
        &self,
        stream: &mut dyn RequestStream,
        obs_run: u64,
    ) -> (SimReport, TraceAccounting) {
        let _prof = dpm_prof::scope("sim_event_loop");
        let mut disks = self.make_disks(obs_run);
        let mut router = self.make_router();
        let mut accounting = TraceAccounting::new(self.num_disks());
        let mut acc = Accum::default();
        let mut prev_arrival = f64::NEG_INFINITY;
        let mut pieces: Vec<(usize, u64, u64)> = Vec::new();
        while let Some(r) = stream.next_request() {
            assert!(
                r.arrival_ms >= prev_arrival,
                "trace must be sorted by arrival time"
            );
            prev_arrival = r.arrival_ms;
            let mut completion = r.arrival_ms;
            let mut device_ms = 0.0_f64;
            match &router {
                Some(rt) => rt.volume.split_range_into(r.offset, r.len, &mut pieces),
                None => self.split_request_into(r.offset, r.len, &mut pieces),
            }
            accounting.push(&r, &pieces);
            for &(disk, local_byte, len) in &pieces {
                let out = disks[disk].service(&SubRequest {
                    arrival_ms: r.arrival_ms,
                    local_byte,
                    len,
                    migration: false,
                });
                completion = completion.max(out.completion_ms);
                device_ms = device_ms.max(out.stall_ms + out.service_ms);
            }
            acc.push(r.arrival_ms, completion, device_ms);
            if let Some(rt) = &mut router {
                for (disk, sub) in rt.after_request(r.offset, r.arrival_ms) {
                    let out = disks[disk].service(&sub);
                    acc.observe(out.completion_ms);
                }
            }
        }
        for d in &mut disks {
            d.finish(acc.makespan);
        }
        let app_requests = accounting.app_requests;
        let events = router.map(|r| r.events).unwrap_or_default();
        (
            self.build_report(disks, acc, app_requests, obs_run, events),
            accounting,
        )
    }

    /// The sharded streaming pass: a windowed pipeline over persistent
    /// per-disk workers.
    ///
    /// The feeder pulls up to [`STREAM_WINDOW`] requests, splits each into
    /// per-disk sub-request batches (recording each request's piece disks
    /// in split order), and pushes one batch per disk into that disk's
    /// shard queue. While the workers service window *k*, the feeder joins
    /// window *k−1* — replaying its requests in arrival order and folding
    /// each request's piece outcomes with the same `max`/`+=` order as the
    /// serial pass — and splits window *k+1*. At most two windows are ever
    /// in flight, so memory is O(disks × window).
    ///
    /// Determinism: each disk is serviced by exactly one worker, and a
    /// disk's sub-request order (batch order × order within batch) equals
    /// the serial pass's order, so per-disk outcomes — fault decisions
    /// included, they are a function of the disk's own decision sequence —
    /// and the joined aggregates are bit-identical to the serial pass.
    fn run_stream_sharded(
        &self,
        stream: &mut dyn RequestStream,
        obs_run: u64,
    ) -> (SimReport, TraceAccounting) {
        let n = self.num_disks();
        let mut accounting = TraceAccounting::new(n);
        let mut acc = Accum::default();
        let mut router = self.make_router();

        // One window awaiting join while the next is in service: capacity
        // two batches per queue gives the pipeline its single overlap slot
        // without unbounded buffering.
        let (mut disks, ()) = dpm_exec::shard_scope(
            self.make_disks(obs_run),
            2,
            |_disk_id, disk: &mut DiskSim, batch: Vec<SubRequest>| {
                let _prof = dpm_prof::scope("sim_event_loop");
                batch
                    .iter()
                    .map(|sub| disk.service(sub))
                    .collect::<Vec<ServiceOutcome>>()
            },
            |feeder| {
                let _prof = dpm_prof::scope("sim_split");
                let mut prev_arrival = f64::NEG_INFINITY;
                let mut pieces: Vec<(usize, u64, u64)> = Vec::new();
                let mut batches: Vec<Vec<SubRequest>> = vec![Vec::new(); n];
                // The window being assembled: per request its arrival and
                // piece count, plus the flat piece→disk list in split
                // order (the serial fold order).
                let mut window = WindowMeta::default();
                let mut in_flight: VecDeque<WindowMeta> = VecDeque::new();
                let mut exhausted = false;
                while !exhausted || !in_flight.is_empty() || !window.arrivals.is_empty() {
                    // Assemble one window.
                    while !exhausted && window.arrivals.len() < STREAM_WINDOW {
                        let Some(r) = stream.next_request() else {
                            exhausted = true;
                            break;
                        };
                        assert!(
                            r.arrival_ms >= prev_arrival,
                            "trace must be sorted by arrival time"
                        );
                        prev_arrival = r.arrival_ms;
                        match &router {
                            Some(rt) => rt.volume.split_range_into(r.offset, r.len, &mut pieces),
                            None => self.split_request_into(r.offset, r.len, &mut pieces),
                        }
                        accounting.push(&r, &pieces);
                        window.arrivals.push(r.arrival_ms);
                        window.piece_counts.push(pieces.len() as u32);
                        window.migration.push(false);
                        for &(disk, local_byte, len) in &pieces {
                            window.piece_disks.push(disk as u32);
                            batches[disk].push(SubRequest {
                                arrival_ms: r.arrival_ms,
                                local_byte,
                                len,
                                migration: false,
                            });
                        }
                        // Migration decisions happen here, in the split
                        // stage — the same point the serial pass consults
                        // the router — so the per-disk sub-request order
                        // (hence every outcome) is identical.
                        if let Some(rt) = router.as_mut() {
                            let subs = rt.after_request(r.offset, r.arrival_ms);
                            if !subs.is_empty() {
                                window.arrivals.push(r.arrival_ms);
                                window.piece_counts.push(subs.len() as u32);
                                window.migration.push(true);
                                for (disk, sub) in subs {
                                    window.piece_disks.push(disk as u32);
                                    batches[disk].push(sub);
                                }
                            }
                        }
                    }
                    // Ship it (empty per-disk batches included, so the
                    // join can pop uniformly).
                    if !window.arrivals.is_empty() {
                        for (disk, batch) in batches.iter_mut().enumerate() {
                            feeder.push(disk, std::mem::take(batch));
                        }
                        in_flight.push_back(std::mem::take(&mut window));
                    }
                    // Join the oldest window once the pipeline holds two
                    // (or once the stream has run dry).
                    while in_flight.len() > 1 || (exhausted && !in_flight.is_empty()) {
                        let meta = in_flight.pop_front().expect("checked non-empty");
                        let outs: Vec<Vec<ServiceOutcome>> =
                            (0..n).map(|disk| feeder.pop(disk)).collect();
                        let mut next_piece = 0usize;
                        let mut cursors = vec![0usize; n];
                        for (i, &arrival_ms) in meta.arrivals.iter().enumerate() {
                            let mut completion = arrival_ms;
                            let mut device_ms = 0.0_f64;
                            for _ in 0..meta.piece_counts[i] {
                                let disk = meta.piece_disks[next_piece] as usize;
                                next_piece += 1;
                                let out = &outs[disk][cursors[disk]];
                                cursors[disk] += 1;
                                completion = completion.max(out.completion_ms);
                                device_ms = device_ms.max(out.stall_ms + out.service_ms);
                            }
                            if meta.migration[i] {
                                // Background traffic: extends the makespan
                                // but charges no application I/O time.
                                acc.observe(completion);
                            } else {
                                acc.push(arrival_ms, completion, device_ms);
                            }
                        }
                    }
                }
            },
        );
        for d in &mut disks {
            d.finish(acc.makespan);
        }
        let app_requests = accounting.app_requests;
        let events = router.map(|r| r.events).unwrap_or_default();
        (
            self.build_report(disks, acc, app_requests, obs_run, events),
            accounting,
        )
    }
}

/// Run-local tier state: the (mutable) placed volume plus the online
/// migration policy. Both passes drive it from the split stage in the same
/// per-request order, so the promote/demote sequence — and with it every
/// per-disk sub-request stream — is deterministic at any thread count.
struct TierRouter {
    volume: TieredVolume,
    migration: Option<MigrationConfig>,
    /// Seeded tie-break stream for equally-hot/cold candidates.
    rng: XorShift64Star,
    /// Per-array access counts in the current window (grown on demand).
    counts: Vec<u64>,
    /// Requests seen in the current window.
    seen: u64,
    /// Application requests processed so far (stamps migration events).
    processed: u64,
    events: Vec<MigrationEvent>,
}

impl TierRouter {
    /// Accounts one application request; at a window boundary, runs the
    /// promote/demote policy and returns the migration transfers as
    /// `(disk, sub-request)` in deterministic service order (each move's
    /// source-tier reads then destination-tier writes, by disk).
    fn after_request(&mut self, offset: u64, now_ms: f64) -> Vec<(usize, SubRequest)> {
        self.processed += 1;
        let Some(cfg) = self.migration else {
            return Vec::new();
        };
        if let Some(array) = self.volume.array_of_offset(offset) {
            if array >= self.counts.len() {
                self.counts.resize(array + 1, 0);
            }
            self.counts[array] += 1;
        }
        self.seen += 1;
        if self.seen < cfg.window_requests {
            return Vec::new();
        }
        self.seen = 0;
        let moves = self.window_decision(&cfg);
        let mut subs = Vec::new();
        for mv in &moves {
            self.events.push(MigrationEvent {
                at_request: self.processed,
                array: mv.array,
                from_tier: mv.from_tier,
                to_tier: mv.to_tier,
                bytes: mv.bytes,
            });
            for &(disk, len) in mv.reads.iter().chain(mv.writes.iter()) {
                subs.push((
                    disk,
                    SubRequest {
                        arrival_ms: now_ms,
                        local_byte: 0,
                        len,
                        migration: true,
                    },
                ));
            }
        }
        for c in &mut self.counts {
            *c = 0;
        }
        subs
    }

    /// One window boundary's worth of decisions: promote the hottest
    /// whole array stranded off the fast tier when its window count beats
    /// the fast tier's coldest resident by the configured margin, demoting
    /// that resident to make room when capacity demands it.
    fn window_decision(&mut self, cfg: &MigrationConfig) -> Vec<MigrationMove> {
        let nt = self.volume.topology().num_tiers();
        let mut out = Vec::new();
        if nt < 2 {
            return out;
        }
        for _ in 0..cfg.max_moves_per_window {
            let mut hot: Option<usize> = None;
            for a in 0..self.counts.len() {
                if self.counts[a] == 0 || self.volume.tier_of_array(a).is_none_or(|t| t == 0) {
                    continue;
                }
                hot = match hot {
                    None => Some(a),
                    Some(h) if self.counts[a] > self.counts[h] => Some(a),
                    Some(h) if self.counts[a] == self.counts[h] && self.rng.next_u64() & 1 == 1 => {
                        Some(a)
                    }
                    keep => keep,
                };
            }
            let Some(hot) = hot else { break };
            let hot_tier = self.volume.tier_of_array(hot).expect("hot is whole");
            let mut cold: Option<usize> = None;
            for a in 0..self.volume.num_arrays() {
                if self.volume.tier_of_array(a) != Some(0) {
                    continue;
                }
                let ca = self.counts.get(a).copied().unwrap_or(0);
                cold = match cold {
                    None => Some(a),
                    Some(c) => {
                        let cc = self.counts.get(c).copied().unwrap_or(0);
                        if ca < cc || (ca == cc && self.rng.next_u64() & 1 == 1) {
                            Some(a)
                        } else {
                            Some(c)
                        }
                    }
                };
            }
            let hot_count = self.counts[hot] as f64;
            let cold_count = cold.map_or(0, |c| self.counts.get(c).copied().unwrap_or(0)) as f64;
            if hot_count < cfg.promote_margin * cold_count.max(1.0) {
                break;
            }
            if !self.volume.fits(hot, 0) {
                let Some(cold) = cold else { break };
                if !self.volume.fits(cold, hot_tier) {
                    break;
                }
                out.push(self.volume.remap_array(cold, hot_tier));
                if !self.volume.fits(hot, 0) {
                    break;
                }
            }
            out.push(self.volume.remap_array(hot, 0));
        }
        out
    }
}

/// Join metadata for one in-flight window of the sharded streaming pass.
#[derive(Default)]
struct WindowMeta {
    arrivals: Vec<f64>,
    piece_counts: Vec<u32>,
    piece_disks: Vec<u32>,
    /// Whether entry `i` is a block of migration transfers (folded into
    /// the makespan only) rather than an application request.
    migration: Vec<bool>,
}

/// The per-request aggregates both passes fold in identical order.
#[derive(Default)]
struct Accum {
    total_io_time_ms: f64,
    total_response_ms: f64,
    makespan: f64,
}

impl Accum {
    fn push(&mut self, arrival_ms: f64, completion: f64, device_ms: f64) {
        self.total_io_time_ms += device_ms;
        self.total_response_ms += completion - arrival_ms;
        self.makespan = self.makespan.max(completion);
    }

    /// Folds a background (migration) completion into the makespan without
    /// charging application I/O or response time.
    fn observe(&mut self, completion: f64) {
        self.makespan = self.makespan.max(completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{DrpmConfig, TpmConfig};
    use crate::request::{IoRequest, RequestKind};

    fn striping4() -> Striping {
        Striping::new(1024, 4, 0)
    }

    fn simulator(policy: PowerPolicy) -> Simulator {
        Simulator::new(DiskParams::default(), policy, striping4())
    }

    fn read(t: f64, offset: u64, len: u64) -> IoRequest {
        IoRequest {
            arrival_ms: t,
            offset,
            len,
            kind: RequestKind::Read,
            proc_id: 0,
        }
    }

    #[test]
    fn split_single_stripe() {
        let sim = simulator(PowerPolicy::None);
        assert_eq!(sim.split_request(100, 200), vec![(0, 100, 200)]);
        assert_eq!(sim.split_request(1024, 1024), vec![(1, 0, 1024)]);
    }

    #[test]
    fn split_across_disks() {
        let sim = simulator(PowerPolicy::None);
        let pieces = sim.split_request(512, 2048);
        // Stripe 0 tail (512 B on disk 0), stripe 1 (1024 B on disk 1),
        // stripe 2 head (512 B on disk 2).
        assert_eq!(pieces, vec![(0, 512, 512), (1, 0, 1024), (2, 0, 512)]);
    }

    #[test]
    fn split_merges_wraparound_stripes() {
        let sim = simulator(PowerPolicy::None);
        // Two full rows: stripes 0..8. Disk 0 gets stripes 0 and 4, which
        // are locally adjacent and merge into one 2048-byte piece.
        let pieces = sim.split_request(0, 8 * 1024);
        assert_eq!(pieces.len(), 4);
        for (d, b, l) in pieces {
            assert_eq!(b, 0, "disk {d}");
            assert_eq!(l, 2048, "disk {d}");
        }
    }

    #[test]
    fn split_length_conservation() {
        let sim = simulator(PowerPolicy::None);
        for (off, len) in [(0u64, 10_000u64), (777, 5_000), (1023, 2), (4096, 1)] {
            let total: u64 = sim.split_request(off, len).iter().map(|&(_, _, l)| l).sum();
            assert_eq!(total, len, "off={off} len={len}");
        }
    }

    #[test]
    fn run_accounts_every_disk_until_makespan() {
        let sim = simulator(PowerPolicy::None);
        let trace = Trace::from_requests(vec![read(0.0, 0, 1024), read(50.0, 1024, 1024)]);
        let r = sim.run(&trace);
        assert_eq!(r.app_requests, 2);
        for d in &r.per_disk {
            let wall = d.busy_ms + d.idle_ms + d.standby_ms + d.transition_ms;
            assert!((wall - r.makespan_ms).abs() < 1e-6);
        }
        // Disks 2 and 3 never service anything.
        assert_eq!(r.per_disk[2].requests, 0);
        assert_eq!(r.per_disk[3].requests, 0);
    }

    #[test]
    fn io_time_counts_slowest_piece() {
        let sim = simulator(PowerPolicy::None);
        // One request spanning two disks: response = slower piece.
        let trace = Trace::from_requests(vec![read(0.0, 512, 1024)]);
        let r = sim.run(&trace);
        let svc = DiskParams::default().service_ms(512, 15_000, false);
        assert!((r.total_io_time_ms - svc).abs() < 1e-9);
        assert!((r.total_response_ms - svc).abs() < 1e-9);
    }

    #[test]
    fn base_energy_scales_with_makespan() {
        let sim = simulator(PowerPolicy::None);
        let t1 = Trace::from_requests(vec![read(0.0, 0, 1024), read(1_000.0, 0, 1024)]);
        let t2 = Trace::from_requests(vec![read(0.0, 0, 1024), read(10_000.0, 0, 1024)]);
        let r1 = sim.run(&t1);
        let r2 = sim.run(&t2);
        assert!(r2.total_energy_j() > r1.total_energy_j());
    }

    #[test]
    fn tpm_beats_base_when_idle_is_long() {
        let reqs = vec![read(0.0, 0, 1024), read(120_000.0, 0, 1024)];
        let base = simulator(PowerPolicy::None).run(&Trace::from_requests(reqs.clone()));
        let tpm =
            simulator(PowerPolicy::Tpm(TpmConfig::default())).run(&Trace::from_requests(reqs));
        assert!(tpm.total_energy_j() < base.total_energy_j());
        assert!(tpm.total_spin_downs() == 4); // every disk idles long
    }

    #[test]
    fn drpm_beats_base_on_medium_idle() {
        // 20-second gaps: below TPM's spin-down timeout, ripe for DRPM.
        let reqs: Vec<IoRequest> = (0..10)
            .map(|k| read(20_000.0 * k as f64, 0, 4096))
            .collect();
        let base = simulator(PowerPolicy::None).run(&Trace::from_requests(reqs.clone()));
        let tpm = simulator(PowerPolicy::Tpm(TpmConfig::default()))
            .run(&Trace::from_requests(reqs.clone()));
        let drpm =
            simulator(PowerPolicy::Drpm(DrpmConfig::default())).run(&Trace::from_requests(reqs));
        assert!((tpm.total_energy_j() - base.total_energy_j()).abs() < 1e-6);
        assert!(drpm.total_energy_j() < 0.8 * base.total_energy_j());
    }

    #[test]
    fn report_normalization_helpers() {
        let reqs = vec![read(0.0, 0, 1024), read(60_000.0, 0, 1024)];
        let base = simulator(PowerPolicy::None).run(&Trace::from_requests(reqs.clone()));
        let drpm =
            simulator(PowerPolicy::Drpm(DrpmConfig::default())).run(&Trace::from_requests(reqs));
        let saving = drpm.energy_saving_vs(&base);
        assert!(saving > 0.0 && saving < 1.0);
        assert!(drpm.degradation_vs(&base) >= 0.0);
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::*;
    use crate::params::TpmConfig;
    use crate::request::{IoRequest, RequestKind};
    use crate::stats::SpanState;

    #[test]
    fn timelines_cover_the_makespan_without_overlap() {
        let striping = Striping::new(1024, 4, 0);
        let sim = Simulator::new(
            DiskParams::default(),
            PowerPolicy::Tpm(TpmConfig::default()),
            striping,
        )
        .with_timelines();
        let trace = Trace::from_requests(vec![
            IoRequest {
                arrival_ms: 0.0,
                offset: 0,
                len: 4096,
                kind: RequestKind::Read,
                proc_id: 0,
            },
            IoRequest {
                arrival_ms: 120_000.0,
                offset: 0,
                len: 4096,
                kind: RequestKind::Write,
                proc_id: 0,
            },
        ]);
        let r = sim.run(&trace);
        let timelines = r.timelines.as_ref().expect("recording enabled");
        assert_eq!(timelines.len(), 4);
        for spans in timelines {
            // Contiguous, non-overlapping, starting at 0.
            let mut cursor = 0.0;
            for s in spans {
                assert!((s.start_ms - cursor).abs() < 1e-6, "gap at {cursor}");
                assert!(s.end_ms > s.start_ms);
                cursor = s.end_ms;
            }
            // Reaches (at least) the makespan; spin-up stalls may extend
            // the accounted span past it.
            assert!(cursor >= r.makespan_ms - 1e-6);
        }
        // The long gap must show standby somewhere.
        assert!(timelines
            .iter()
            .flatten()
            .any(|s| s.state == SpanState::Standby));
    }

    #[test]
    fn timelines_absent_unless_requested() {
        let striping = Striping::new(1024, 4, 0);
        let sim = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
        let trace = Trace::from_requests(vec![IoRequest {
            arrival_ms: 0.0,
            offset: 0,
            len: 4096,
            kind: RequestKind::Read,
            proc_id: 0,
        }]);
        assert!(sim.run(&trace).timelines.is_none());
    }
}

#[cfg(test)]
mod raid_tests {
    use super::*;
    use crate::params::RaidConfig;
    use crate::request::{IoRequest, RequestKind};

    fn trace() -> Trace {
        Trace::from_requests(
            (0..50)
                .map(|k| IoRequest {
                    arrival_ms: 40.0 * k as f64,
                    offset: 65536 * k as u64,
                    len: 32 * 1024,
                    kind: RequestKind::Read,
                    proc_id: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn raid0_speeds_up_large_requests() {
        let striping = Striping::new(32 * 1024, 4, 0);
        let single = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
        let raid = Simulator::new(DiskParams::default(), PowerPolicy::None, striping)
            .with_raid(RaidConfig::raid0(4, 8 * 1024));
        let rs = single.run(&trace());
        let rr = raid.run(&trace());
        assert!(
            rr.total_io_time_ms < rs.total_io_time_ms,
            "raid {} vs single {}",
            rr.total_io_time_ms,
            rs.total_io_time_ms
        );
    }

    #[test]
    fn raid0_scales_node_power() {
        let striping = Striping::new(32 * 1024, 4, 0);
        let single = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
        let raid = Simulator::new(DiskParams::default(), PowerPolicy::None, striping)
            .with_raid(RaidConfig::raid0(2, 8 * 1024));
        let rs = single.run(&trace());
        let rr = raid.run(&trace());
        let ratio = rr.total_energy_j() / rs.total_energy_j();
        assert!((1.8..2.05).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn max_member_bytes_distribution() {
        let r = RaidConfig::raid0(4, 8 * 1024);
        // 32 KB = 4 chunks → 1 per member.
        assert_eq!(r.max_member_bytes(32 * 1024), 8 * 1024);
        // 40 KB = 5 chunks → one member carries 2.
        assert_eq!(r.max_member_bytes(40 * 1024), 16 * 1024);
        // Tiny request: one member does all of it.
        assert_eq!(r.max_member_bytes(100), 100);
        assert_eq!(RaidConfig::single().max_member_bytes(12345), 12345);
    }
}

#[cfg(test)]
mod tier_tests {
    use super::*;
    use crate::params::{DiskClass, TpmConfig};
    use crate::request::{IoRequest, RequestKind};
    use dpm_layout::{LayoutMap, PlacementPlan, TieredVolume};

    fn layout(striping: Striping) -> LayoutMap {
        let p = dpm_ir::parse_program(
            "program t;
             array A[64][64] : f64;
             array B[32][64] : f64;
             array C[16][64] : f64;
             nest L { for i = 0 .. 0 { A[0][0] = B[0][0] + C[0][0]; } }",
        )
        .unwrap();
        LayoutMap::new(&p, striping)
    }

    fn read(t: f64, offset: u64, len: u64) -> IoRequest {
        IoRequest {
            arrival_ms: t,
            offset,
            len,
            kind: RequestKind::Read,
            proc_id: 0,
        }
    }

    /// A single-class tier configuration with a whole-array file-order
    /// placement reproduces the flat simulator bit for bit (per-disk
    /// stats, makespan, energy), with only the tier summary added.
    #[test]
    fn single_class_tiers_match_flat_exactly() {
        let striping = Striping::new(1024, 4, 0);
        let m = layout(striping);
        let sizes: Vec<u64> = (0..3).map(|a| m.file_len(a)).collect();
        let plan = PlacementPlan::uniform(0, &sizes);
        let config = TierConfig::single_class(1024, DiskClass::performance(), 4);
        let vol = TieredVolume::new(&m, config.topology(), &plan);
        let trace = Trace::from_requests(vec![
            read(0.0, 0, 10_000),
            read(5_000.0, m.file_base(1), 4_096),
            read(120_000.0, m.file_base(2) + 1_024, 2_048),
        ]);
        let policy = PowerPolicy::Tpm(TpmConfig::default());
        let flat = Simulator::new(DiskParams::default(), policy, striping)
            .with_exec_threads(1)
            .run(&trace);
        let tiered = Simulator::new(DiskParams::default(), policy, striping)
            .with_tiers(config, vol)
            .with_exec_threads(1)
            .run(&trace);
        assert!(
            tiered.tiers.is_some(),
            "tiered run must carry a tier report"
        );
        let mut a = flat.clone();
        let mut b = tiered.clone();
        a.obs_run = 0;
        b.obs_run = 0;
        b.tiers = None;
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(
            flat.total_energy_j().to_bits(),
            tiered.total_energy_j().to_bits()
        );
    }

    /// Online migration promotes a hot array parked on the cold tier, the
    /// moved bytes balance (reads + writes = 2x logical), and the decision
    /// sequence is identical at any thread count.
    #[test]
    fn migration_promotes_hot_array_deterministically() {
        let striping = Striping::new(1024, 4, 0);
        let m = layout(striping);
        let sizes: Vec<u64> = (0..3).map(|a| m.file_len(a)).collect();
        // Everything starts on the cold (nearline) tier.
        let plan = PlacementPlan::uniform(1, &sizes);
        let config = TierConfig::perf_nearline(1024, 2, 2);
        let vol = TieredVolume::new(&m, config.topology(), &plan);
        // Hammer array C with closely spaced reads.
        let c_lo = m.file_base(2);
        let reqs: Vec<IoRequest> = (0..64)
            .map(|k| read(100.0 * k as f64, c_lo + 1024 * (k % 8), 1024))
            .collect();
        let trace = Trace::from_requests(reqs);
        let mig = MigrationConfig {
            window_requests: 16,
            ..MigrationConfig::default()
        };
        let run = |threads: usize| {
            Simulator::new(DiskParams::default(), PowerPolicy::None, striping)
                .with_tiers(config.clone(), vol.clone())
                .with_migration(mig)
                .with_exec_threads(threads)
                .run(&trace)
        };
        let serial = run(1);
        let tiers = serial.tiers.as_ref().expect("tier report");
        assert!(!tiers.events.is_empty(), "no promotion fired");
        let first = tiers.events[0];
        assert_eq!(first.array, 2);
        assert_eq!(first.from_tier, 1);
        assert_eq!(first.to_tier, 0);
        assert_eq!(first.bytes, m.file_len(2));
        let event_bytes: u64 = tiers.events.iter().map(|e| e.bytes).sum();
        assert_eq!(serial.total_migration_bytes(), 2 * event_bytes);
        assert!(serial.total_migration_requests() > 0);
        // App-request conservation is untouched by migration traffic.
        assert_eq!(serial.app_requests, 64);
        for threads in [2, 8] {
            let parallel = run(threads);
            let mut a = serial.clone();
            let mut b = parallel.clone();
            a.obs_run = 0;
            b.obs_run = 0;
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "threads={threads} diverged"
            );
        }
    }
}
