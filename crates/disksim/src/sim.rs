//! The trace-driven multi-disk simulator: splits application requests into
//! per-disk sub-requests according to the striping, feeds each disk's
//! stream through its [`DiskSim`], and aggregates energy and I/O-time
//! statistics.

use crate::disk::{DiskSim, ServiceOutcome, SubRequest};
use crate::params::{DiskParams, PowerPolicy, RaidConfig};
use crate::request::Trace;
use crate::stats::SimReport;
use crate::stream::{RequestStream, TraceAccounting, TraceStream};
use dpm_faults::FaultPlan;
use dpm_layout::Striping;
use std::collections::VecDeque;

/// Application requests per streaming window: the bounded unit of work the
/// sharded pass hands to each disk worker, and the only request-shaped
/// memory the event loop ever holds. Resident memory is O(disks × window)
/// regardless of stream length.
const STREAM_WINDOW: usize = 1024;

/// A configured simulator: disk parameters + power policy + striping.
///
/// # Examples
///
/// ```
/// use dpm_disksim::{Simulator, Trace, IoRequest, RequestKind, PowerPolicy, DiskParams};
/// use dpm_layout::Striping;
///
/// let striping = Striping::new(32 * 1024, 4, 0);
/// let sim = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
/// let trace = Trace::from_requests(vec![IoRequest {
///     arrival_ms: 0.0,
///     offset: 0,
///     len: 128 * 1024, // spans all four disks
///     kind: RequestKind::Read,
///     proc_id: 0,
/// }]);
/// let report = sim.run(&trace);
/// assert_eq!(report.per_disk.len(), 4);
/// assert!(report.per_disk.iter().all(|d| d.requests == 1));
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    params: DiskParams,
    policy: PowerPolicy,
    striping: Striping,
    raid: RaidConfig,
    timelines: bool,
    threads: Option<usize>,
    faults: FaultPlan,
}

impl Simulator {
    /// Creates a simulator over `striping.num_disks()` identical
    /// single-disk I/O nodes.
    pub fn new(params: DiskParams, policy: PowerPolicy, striping: Striping) -> Self {
        Simulator {
            params,
            policy,
            striping,
            raid: RaidConfig::single(),
            timelines: false,
            threads: None,
            faults: FaultPlan::zero(),
        }
    }

    /// Arms a deterministic fault plan. The zero plan (the default) takes
    /// the fault-free fast path and is bit-identical to a simulator that
    /// never heard of faults; any other plan derives one independent
    /// decision stream per disk from `plan.seed`, so reports are
    /// reproducible at any thread count.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The fault plan in effect.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Enables per-disk power-state timeline recording in the report.
    #[must_use]
    pub fn with_timelines(mut self) -> Self {
        self.timelines = true;
        self
    }

    /// Overrides the worker-thread count for [`run`](Self::run). The default
    /// (`None`) follows `DPM_THREADS` / the machine's core count; `1` forces
    /// the serial reference path. Either way the report is bit-identical:
    /// each disk's sub-request stream is serviced in the same order, and the
    /// per-request join replays the serial accumulation order.
    #[must_use]
    pub fn with_exec_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Backs each I/O node with a RAID set (§2's second striping level).
    #[must_use]
    pub fn with_raid(mut self, raid: RaidConfig) -> Self {
        self.raid = raid;
        self
    }

    /// The striping in effect.
    pub fn striping(&self) -> &Striping {
        &self.striping
    }

    /// The power policy in effect.
    pub fn policy(&self) -> PowerPolicy {
        self.policy
    }

    /// Splits one application request into its per-disk contiguous pieces
    /// `(disk, local_byte, len)`. Consecutive stripes on the same disk are
    /// merged into one piece (they are adjacent in the disk's local address
    /// space).
    pub fn split_request(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        self.striping.split_range(offset, len)
    }

    /// Scratch-buffer variant of [`split_request`](Self::split_request):
    /// clears `out` and fills it with the pieces. The simulation hot loops
    /// use this to avoid one `Vec` allocation per application request.
    pub fn split_request_into(&self, offset: u64, len: u64, out: &mut Vec<(usize, u64, u64)>) {
        self.striping.split_range_into(offset, len, out);
    }

    fn make_disks(&self, obs_run: u64) -> Vec<DiskSim> {
        (0..self.striping.num_disks())
            .map(|disk| {
                let mut d = DiskSim::with_raid(self.params, self.policy, self.raid);
                d.set_obs_identity(obs_run, disk);
                if self.timelines {
                    d.record_timeline();
                }
                if !self.faults.is_zero() {
                    d.set_fault_injector(self.faults.injector_for_disk(disk));
                }
                d
            })
            .collect()
    }

    fn build_report(
        &self,
        disks: Vec<DiskSim>,
        acc: Accum,
        app_requests: u64,
        obs_run: u64,
    ) -> SimReport {
        SimReport {
            makespan_ms: acc.makespan,
            total_io_time_ms: acc.total_io_time_ms,
            total_response_ms: acc.total_response_ms,
            idle_histograms: disks.iter().map(|d| d.idle_histogram().clone()).collect(),
            timelines: if self.timelines {
                Some(
                    disks
                        .iter()
                        .map(|d| d.timeline().unwrap_or_default().to_vec())
                        .collect(),
                )
            } else {
                None
            },
            stream: disks.iter().map(|d| d.stream_metrics().clone()).collect(),
            per_disk: disks.into_iter().map(|d| d.stats().clone()).collect(),
            app_requests,
            obs_run,
        }
    }

    /// Runs the simulation over a (time-sorted) trace: the thin adapter
    /// over [`run_stream`](Self::run_stream), feeding the materialized
    /// requests through the same event loop a live stream would use. The
    /// two paths are bit-identical by construction (and proven so by
    /// `tests/stream_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the trace's arrivals are not non-decreasing.
    pub fn run(&self, trace: &Trace) -> SimReport {
        self.run_stream(&mut TraceStream::new(trace))
    }

    /// Runs the simulation over any [`RequestStream`], pulling one request
    /// at a time: resident memory is O(disks + window) no matter how long
    /// the stream is.
    ///
    /// Dispatches to a per-disk sharded pass over persistent shard workers
    /// (see [`dpm_exec::shard_scope`]) when more than one worker thread is
    /// in effect (see [`with_exec_threads`](Self::with_exec_threads) and
    /// `DPM_THREADS`) and the volume has more than one disk; otherwise
    /// runs the serial reference pass. Both produce bit-identical reports.
    ///
    /// # Panics
    ///
    /// Panics if the stream's arrivals are not non-decreasing.
    pub fn run_stream(&self, stream: &mut dyn RequestStream) -> SimReport {
        let obs_run = dpm_obs::next_run_id();
        let _prof = dpm_prof::scope("simulate");
        let mut sp = dpm_obs::span!("simulate");
        sp.add("run", obs_run);
        let threads =
            dpm_exec::effective_threads(self.threads.unwrap_or_else(dpm_exec::num_threads));
        let (report, accounting) = if threads > 1 && self.striping.num_disks() > 1 {
            sp.add("workers", self.striping.num_disks() as u64);
            self.run_stream_sharded(stream, obs_run)
        } else {
            self.run_stream_serial(stream, obs_run)
        };
        sp.add("app_requests", report.app_requests);
        sp.add(
            "sub_requests",
            report.per_disk.iter().map(|d| d.requests).sum(),
        );
        // Debug builds (hence every `cargo test`) verify the conservation
        // laws after every run; see [`crate::invariants`]. Request
        // conservation is judged against the accounting gathered while the
        // stream flowed past — there is no trace to re-walk.
        #[cfg(debug_assertions)]
        crate::invariants::assert_clean_streamed(&report, &self.params, &self.raid, &accounting);
        #[cfg(not(debug_assertions))]
        let _ = &accounting;
        report
    }

    /// The serial reference pass: services every sub-request inline, in
    /// request order, pieces in `(disk, local_byte)` order within a request.
    fn run_stream_serial(
        &self,
        stream: &mut dyn RequestStream,
        obs_run: u64,
    ) -> (SimReport, TraceAccounting) {
        let _prof = dpm_prof::scope("sim_event_loop");
        let mut disks = self.make_disks(obs_run);
        let mut accounting = TraceAccounting::new(self.striping.num_disks());
        let mut acc = Accum::default();
        let mut prev_arrival = f64::NEG_INFINITY;
        let mut pieces: Vec<(usize, u64, u64)> = Vec::new();
        while let Some(r) = stream.next_request() {
            assert!(
                r.arrival_ms >= prev_arrival,
                "trace must be sorted by arrival time"
            );
            prev_arrival = r.arrival_ms;
            let mut completion = r.arrival_ms;
            let mut device_ms = 0.0_f64;
            self.split_request_into(r.offset, r.len, &mut pieces);
            accounting.push(&r, &pieces);
            for &(disk, local_byte, len) in &pieces {
                let out = disks[disk].service(&SubRequest {
                    arrival_ms: r.arrival_ms,
                    local_byte,
                    len,
                });
                completion = completion.max(out.completion_ms);
                device_ms = device_ms.max(out.stall_ms + out.service_ms);
            }
            acc.push(r.arrival_ms, completion, device_ms);
        }
        for d in &mut disks {
            d.finish(acc.makespan);
        }
        let app_requests = accounting.app_requests;
        (
            self.build_report(disks, acc, app_requests, obs_run),
            accounting,
        )
    }

    /// The sharded streaming pass: a windowed pipeline over persistent
    /// per-disk workers.
    ///
    /// The feeder pulls up to [`STREAM_WINDOW`] requests, splits each into
    /// per-disk sub-request batches (recording each request's piece disks
    /// in split order), and pushes one batch per disk into that disk's
    /// shard queue. While the workers service window *k*, the feeder joins
    /// window *k−1* — replaying its requests in arrival order and folding
    /// each request's piece outcomes with the same `max`/`+=` order as the
    /// serial pass — and splits window *k+1*. At most two windows are ever
    /// in flight, so memory is O(disks × window).
    ///
    /// Determinism: each disk is serviced by exactly one worker, and a
    /// disk's sub-request order (batch order × order within batch) equals
    /// the serial pass's order, so per-disk outcomes — fault decisions
    /// included, they are a function of the disk's own decision sequence —
    /// and the joined aggregates are bit-identical to the serial pass.
    fn run_stream_sharded(
        &self,
        stream: &mut dyn RequestStream,
        obs_run: u64,
    ) -> (SimReport, TraceAccounting) {
        let n = self.striping.num_disks();
        let mut accounting = TraceAccounting::new(n);
        let mut acc = Accum::default();

        // One window awaiting join while the next is in service: capacity
        // two batches per queue gives the pipeline its single overlap slot
        // without unbounded buffering.
        let (mut disks, ()) = dpm_exec::shard_scope(
            self.make_disks(obs_run),
            2,
            |_disk_id, disk: &mut DiskSim, batch: Vec<SubRequest>| {
                let _prof = dpm_prof::scope("sim_event_loop");
                batch
                    .iter()
                    .map(|sub| disk.service(sub))
                    .collect::<Vec<ServiceOutcome>>()
            },
            |feeder| {
                let _prof = dpm_prof::scope("sim_split");
                let mut prev_arrival = f64::NEG_INFINITY;
                let mut pieces: Vec<(usize, u64, u64)> = Vec::new();
                let mut batches: Vec<Vec<SubRequest>> = vec![Vec::new(); n];
                // The window being assembled: per request its arrival and
                // piece count, plus the flat piece→disk list in split
                // order (the serial fold order).
                let mut window = WindowMeta::default();
                let mut in_flight: VecDeque<WindowMeta> = VecDeque::new();
                let mut exhausted = false;
                while !exhausted || !in_flight.is_empty() || !window.arrivals.is_empty() {
                    // Assemble one window.
                    while !exhausted && window.arrivals.len() < STREAM_WINDOW {
                        let Some(r) = stream.next_request() else {
                            exhausted = true;
                            break;
                        };
                        assert!(
                            r.arrival_ms >= prev_arrival,
                            "trace must be sorted by arrival time"
                        );
                        prev_arrival = r.arrival_ms;
                        self.split_request_into(r.offset, r.len, &mut pieces);
                        accounting.push(&r, &pieces);
                        window.arrivals.push(r.arrival_ms);
                        window.piece_counts.push(pieces.len() as u32);
                        for &(disk, local_byte, len) in &pieces {
                            window.piece_disks.push(disk as u32);
                            batches[disk].push(SubRequest {
                                arrival_ms: r.arrival_ms,
                                local_byte,
                                len,
                            });
                        }
                    }
                    // Ship it (empty per-disk batches included, so the
                    // join can pop uniformly).
                    if !window.arrivals.is_empty() {
                        for (disk, batch) in batches.iter_mut().enumerate() {
                            feeder.push(disk, std::mem::take(batch));
                        }
                        in_flight.push_back(std::mem::take(&mut window));
                    }
                    // Join the oldest window once the pipeline holds two
                    // (or once the stream has run dry).
                    while in_flight.len() > 1 || (exhausted && !in_flight.is_empty()) {
                        let meta = in_flight.pop_front().expect("checked non-empty");
                        let outs: Vec<Vec<ServiceOutcome>> =
                            (0..n).map(|disk| feeder.pop(disk)).collect();
                        let mut next_piece = 0usize;
                        let mut cursors = vec![0usize; n];
                        for (i, &arrival_ms) in meta.arrivals.iter().enumerate() {
                            let mut completion = arrival_ms;
                            let mut device_ms = 0.0_f64;
                            for _ in 0..meta.piece_counts[i] {
                                let disk = meta.piece_disks[next_piece] as usize;
                                next_piece += 1;
                                let out = &outs[disk][cursors[disk]];
                                cursors[disk] += 1;
                                completion = completion.max(out.completion_ms);
                                device_ms = device_ms.max(out.stall_ms + out.service_ms);
                            }
                            acc.push(arrival_ms, completion, device_ms);
                        }
                    }
                }
            },
        );
        for d in &mut disks {
            d.finish(acc.makespan);
        }
        let app_requests = accounting.app_requests;
        (
            self.build_report(disks, acc, app_requests, obs_run),
            accounting,
        )
    }
}

/// Join metadata for one in-flight window of the sharded streaming pass.
#[derive(Default)]
struct WindowMeta {
    arrivals: Vec<f64>,
    piece_counts: Vec<u32>,
    piece_disks: Vec<u32>,
}

/// The per-request aggregates both passes fold in identical order.
#[derive(Default)]
struct Accum {
    total_io_time_ms: f64,
    total_response_ms: f64,
    makespan: f64,
}

impl Accum {
    fn push(&mut self, arrival_ms: f64, completion: f64, device_ms: f64) {
        self.total_io_time_ms += device_ms;
        self.total_response_ms += completion - arrival_ms;
        self.makespan = self.makespan.max(completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{DrpmConfig, TpmConfig};
    use crate::request::{IoRequest, RequestKind};

    fn striping4() -> Striping {
        Striping::new(1024, 4, 0)
    }

    fn simulator(policy: PowerPolicy) -> Simulator {
        Simulator::new(DiskParams::default(), policy, striping4())
    }

    fn read(t: f64, offset: u64, len: u64) -> IoRequest {
        IoRequest {
            arrival_ms: t,
            offset,
            len,
            kind: RequestKind::Read,
            proc_id: 0,
        }
    }

    #[test]
    fn split_single_stripe() {
        let sim = simulator(PowerPolicy::None);
        assert_eq!(sim.split_request(100, 200), vec![(0, 100, 200)]);
        assert_eq!(sim.split_request(1024, 1024), vec![(1, 0, 1024)]);
    }

    #[test]
    fn split_across_disks() {
        let sim = simulator(PowerPolicy::None);
        let pieces = sim.split_request(512, 2048);
        // Stripe 0 tail (512 B on disk 0), stripe 1 (1024 B on disk 1),
        // stripe 2 head (512 B on disk 2).
        assert_eq!(pieces, vec![(0, 512, 512), (1, 0, 1024), (2, 0, 512)]);
    }

    #[test]
    fn split_merges_wraparound_stripes() {
        let sim = simulator(PowerPolicy::None);
        // Two full rows: stripes 0..8. Disk 0 gets stripes 0 and 4, which
        // are locally adjacent and merge into one 2048-byte piece.
        let pieces = sim.split_request(0, 8 * 1024);
        assert_eq!(pieces.len(), 4);
        for (d, b, l) in pieces {
            assert_eq!(b, 0, "disk {d}");
            assert_eq!(l, 2048, "disk {d}");
        }
    }

    #[test]
    fn split_length_conservation() {
        let sim = simulator(PowerPolicy::None);
        for (off, len) in [(0u64, 10_000u64), (777, 5_000), (1023, 2), (4096, 1)] {
            let total: u64 = sim.split_request(off, len).iter().map(|&(_, _, l)| l).sum();
            assert_eq!(total, len, "off={off} len={len}");
        }
    }

    #[test]
    fn run_accounts_every_disk_until_makespan() {
        let sim = simulator(PowerPolicy::None);
        let trace = Trace::from_requests(vec![read(0.0, 0, 1024), read(50.0, 1024, 1024)]);
        let r = sim.run(&trace);
        assert_eq!(r.app_requests, 2);
        for d in &r.per_disk {
            let wall = d.busy_ms + d.idle_ms + d.standby_ms + d.transition_ms;
            assert!((wall - r.makespan_ms).abs() < 1e-6);
        }
        // Disks 2 and 3 never service anything.
        assert_eq!(r.per_disk[2].requests, 0);
        assert_eq!(r.per_disk[3].requests, 0);
    }

    #[test]
    fn io_time_counts_slowest_piece() {
        let sim = simulator(PowerPolicy::None);
        // One request spanning two disks: response = slower piece.
        let trace = Trace::from_requests(vec![read(0.0, 512, 1024)]);
        let r = sim.run(&trace);
        let svc = DiskParams::default().service_ms(512, 15_000, false);
        assert!((r.total_io_time_ms - svc).abs() < 1e-9);
        assert!((r.total_response_ms - svc).abs() < 1e-9);
    }

    #[test]
    fn base_energy_scales_with_makespan() {
        let sim = simulator(PowerPolicy::None);
        let t1 = Trace::from_requests(vec![read(0.0, 0, 1024), read(1_000.0, 0, 1024)]);
        let t2 = Trace::from_requests(vec![read(0.0, 0, 1024), read(10_000.0, 0, 1024)]);
        let r1 = sim.run(&t1);
        let r2 = sim.run(&t2);
        assert!(r2.total_energy_j() > r1.total_energy_j());
    }

    #[test]
    fn tpm_beats_base_when_idle_is_long() {
        let reqs = vec![read(0.0, 0, 1024), read(120_000.0, 0, 1024)];
        let base = simulator(PowerPolicy::None).run(&Trace::from_requests(reqs.clone()));
        let tpm =
            simulator(PowerPolicy::Tpm(TpmConfig::default())).run(&Trace::from_requests(reqs));
        assert!(tpm.total_energy_j() < base.total_energy_j());
        assert!(tpm.total_spin_downs() == 4); // every disk idles long
    }

    #[test]
    fn drpm_beats_base_on_medium_idle() {
        // 20-second gaps: below TPM's spin-down timeout, ripe for DRPM.
        let reqs: Vec<IoRequest> = (0..10)
            .map(|k| read(20_000.0 * k as f64, 0, 4096))
            .collect();
        let base = simulator(PowerPolicy::None).run(&Trace::from_requests(reqs.clone()));
        let tpm = simulator(PowerPolicy::Tpm(TpmConfig::default()))
            .run(&Trace::from_requests(reqs.clone()));
        let drpm =
            simulator(PowerPolicy::Drpm(DrpmConfig::default())).run(&Trace::from_requests(reqs));
        assert!((tpm.total_energy_j() - base.total_energy_j()).abs() < 1e-6);
        assert!(drpm.total_energy_j() < 0.8 * base.total_energy_j());
    }

    #[test]
    fn report_normalization_helpers() {
        let reqs = vec![read(0.0, 0, 1024), read(60_000.0, 0, 1024)];
        let base = simulator(PowerPolicy::None).run(&Trace::from_requests(reqs.clone()));
        let drpm =
            simulator(PowerPolicy::Drpm(DrpmConfig::default())).run(&Trace::from_requests(reqs));
        let saving = drpm.energy_saving_vs(&base);
        assert!(saving > 0.0 && saving < 1.0);
        assert!(drpm.degradation_vs(&base) >= 0.0);
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::*;
    use crate::params::TpmConfig;
    use crate::request::{IoRequest, RequestKind};
    use crate::stats::SpanState;

    #[test]
    fn timelines_cover_the_makespan_without_overlap() {
        let striping = Striping::new(1024, 4, 0);
        let sim = Simulator::new(
            DiskParams::default(),
            PowerPolicy::Tpm(TpmConfig::default()),
            striping,
        )
        .with_timelines();
        let trace = Trace::from_requests(vec![
            IoRequest {
                arrival_ms: 0.0,
                offset: 0,
                len: 4096,
                kind: RequestKind::Read,
                proc_id: 0,
            },
            IoRequest {
                arrival_ms: 120_000.0,
                offset: 0,
                len: 4096,
                kind: RequestKind::Write,
                proc_id: 0,
            },
        ]);
        let r = sim.run(&trace);
        let timelines = r.timelines.as_ref().expect("recording enabled");
        assert_eq!(timelines.len(), 4);
        for spans in timelines {
            // Contiguous, non-overlapping, starting at 0.
            let mut cursor = 0.0;
            for s in spans {
                assert!((s.start_ms - cursor).abs() < 1e-6, "gap at {cursor}");
                assert!(s.end_ms > s.start_ms);
                cursor = s.end_ms;
            }
            // Reaches (at least) the makespan; spin-up stalls may extend
            // the accounted span past it.
            assert!(cursor >= r.makespan_ms - 1e-6);
        }
        // The long gap must show standby somewhere.
        assert!(timelines
            .iter()
            .flatten()
            .any(|s| s.state == SpanState::Standby));
    }

    #[test]
    fn timelines_absent_unless_requested() {
        let striping = Striping::new(1024, 4, 0);
        let sim = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
        let trace = Trace::from_requests(vec![IoRequest {
            arrival_ms: 0.0,
            offset: 0,
            len: 4096,
            kind: RequestKind::Read,
            proc_id: 0,
        }]);
        assert!(sim.run(&trace).timelines.is_none());
    }
}

#[cfg(test)]
mod raid_tests {
    use super::*;
    use crate::params::RaidConfig;
    use crate::request::{IoRequest, RequestKind};

    fn trace() -> Trace {
        Trace::from_requests(
            (0..50)
                .map(|k| IoRequest {
                    arrival_ms: 40.0 * k as f64,
                    offset: 65536 * k as u64,
                    len: 32 * 1024,
                    kind: RequestKind::Read,
                    proc_id: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn raid0_speeds_up_large_requests() {
        let striping = Striping::new(32 * 1024, 4, 0);
        let single = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
        let raid = Simulator::new(DiskParams::default(), PowerPolicy::None, striping)
            .with_raid(RaidConfig::raid0(4, 8 * 1024));
        let rs = single.run(&trace());
        let rr = raid.run(&trace());
        assert!(
            rr.total_io_time_ms < rs.total_io_time_ms,
            "raid {} vs single {}",
            rr.total_io_time_ms,
            rs.total_io_time_ms
        );
    }

    #[test]
    fn raid0_scales_node_power() {
        let striping = Striping::new(32 * 1024, 4, 0);
        let single = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
        let raid = Simulator::new(DiskParams::default(), PowerPolicy::None, striping)
            .with_raid(RaidConfig::raid0(2, 8 * 1024));
        let rs = single.run(&trace());
        let rr = raid.run(&trace());
        let ratio = rr.total_energy_j() / rs.total_energy_j();
        assert!((1.8..2.05).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn max_member_bytes_distribution() {
        let r = RaidConfig::raid0(4, 8 * 1024);
        // 32 KB = 4 chunks → 1 per member.
        assert_eq!(r.max_member_bytes(32 * 1024), 8 * 1024);
        // 40 KB = 5 chunks → one member carries 2.
        assert_eq!(r.max_member_bytes(40 * 1024), 16 * 1024);
        // Tiny request: one member does all of it.
        assert_eq!(r.max_member_bytes(100), 100);
        assert_eq!(RaidConfig::single().max_member_bytes(12345), 12345);
    }
}
