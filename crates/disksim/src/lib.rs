//! # dpm-disksim — trace-driven disk energy/performance simulator
//!
//! A from-scratch reimplementation of the simulator used in §7 of the CGO
//! 2006 disk-locality paper: a set of identical server disks (IBM Ultrastar
//! 36Z15, Table 1) behind round-robin striping, driven by an I/O request
//! trace in the paper's five-field format, under one of three power
//! regimes:
//!
//! * **Base** ([`PowerPolicy::None`]) — no power management; idle disks
//!   burn full idle power.
//! * **TPM** ([`PowerPolicy::Tpm`]) — spin down after a fixed idle timeout
//!   (break-even 15.2 s), pay a 10.9 s / 135 J spin-up on the next request.
//! * **DRPM** ([`PowerPolicy::Drpm`]) — a multi-speed disk (3 000–15 000
//!   RPM in 3 000 steps) with a windowed response-time controller (window
//!   100) and idle-triggered downward ramping; power scales quadratically
//!   with RPM as in Gurumurthi et al.
//!
//! Outputs are the paper's two metrics: total disk energy (J) and total
//! disk I/O time (sum of request response times), plus per-disk detail and
//! idle-period histograms.
//!
//! ```
//! use dpm_disksim::{Simulator, Trace, IoRequest, RequestKind, PowerPolicy, DiskParams, TpmConfig};
//! use dpm_layout::Striping;
//!
//! let sim = Simulator::new(
//!     DiskParams::ultrastar_36z15(),
//!     PowerPolicy::Tpm(TpmConfig::default()),
//!     Striping::paper_default(),
//! );
//! let trace = Trace::from_requests(vec![
//!     IoRequest { arrival_ms: 0.0, offset: 0, len: 32 * 1024,
//!                 kind: RequestKind::Read, proc_id: 0 },
//!     IoRequest { arrival_ms: 60_000.0, offset: 0, len: 32 * 1024,
//!                 kind: RequestKind::Read, proc_id: 0 },
//! ]);
//! let report = sim.run(&trace);
//! assert!(report.total_energy_j() > 0.0);
//! assert_eq!(report.per_disk.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disk;
pub mod invariants;
mod params;
mod request;
mod sim;
mod stats;
mod stream;

pub use disk::{DiskSim, SubRequest};
pub use dpm_faults::{FaultInjector, FaultPlan, RetryPolicy};
pub use params::{
    DirectiveConfig, DiskClass, DiskParams, DrpmConfig, MigrationConfig, PowerPolicy, RaidConfig,
    Tier, TierConfig, TpmConfig,
};
pub use request::{IoRequest, RequestKind, Trace, TraceParseError, TRACE_BLOCK_BYTES};
pub use sim::Simulator;
pub use stats::{
    ascii_timelines, coalesce_spans, timelines_from_events, DiskStats, IdleHistogram,
    MigrationEvent, SimReport, Span, SpanState, TierReport, TierStats,
};
pub use stream::{RequestStream, TraceAccounting, TraceStream};
