//! Simulator invariant checking: the test backbone's oracle.
//!
//! Every [`SimReport`] — fault-free or produced under an arbitrary
//! [`dpm_faults::FaultPlan`] — must satisfy a set of conservation laws
//! that follow from the accounting model, whatever the policy, striping,
//! RAID shape, or injected fault mix:
//!
//! 1. **Time coverage** — per disk, `busy + idle + standby + transition`
//!    accounts for the whole makespan. The sum may legitimately exceed it
//!    by bounded transition slack (a trailing spin-down is charged in
//!    full even when the trace ends mid-transition, and a final spin-up
//!    stall can extend past the last arrival), never fall short of it.
//! 2. **Energy conservation** — total energy lies between "everything in
//!    standby, the cheapest state" and "every spinning millisecond at
//!    full active power plus every transition lump", with failed spin-up
//!    attempts (counted in `faults`) allowed their own energy lumps.
//! 3. **Timeline coverage** — when recording is enabled, each disk's
//!    spans are contiguous from 0, strictly ordered (monotonic clocks),
//!    reach the makespan, and their per-state durations agree with the
//!    scalar counters.
//! 4. **Fault-counter accounting** — every injected fault is answered by
//!    exactly one retry or one re-queue (a stuck spindle adds at most one
//!    unanswered fault per disk), a disk is degraded iff it re-queued,
//!    and a fault-free report carries all-zero fault counters.
//! 5. **Request conservation** — no request is lost or duplicated: the
//!    per-disk sub-request and byte totals match what the striping says
//!    the trace splits into.
//!
//! [`Simulator::run`](crate::Simulator::run) checks all of this
//! automatically in debug builds (hence in every `cargo test`); release
//! users and the chaos benchmark call [`check_report`] /
//! [`check_trace_accounting`] explicitly.

use crate::params::{DiskParams, RaidConfig, TierConfig};
use crate::request::Trace;
use crate::stats::{SimReport, SpanState};
use crate::stream::TraceAccounting;
use dpm_layout::Striping;
use std::fmt;

/// One violated invariant, with enough context to debug it.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The disk the violation was detected on, if per-disk.
    pub disk: Option<usize>,
    /// Which invariant failed and by how much.
    pub what: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.disk {
            Some(d) => write!(f, "disk {d}: {}", self.what),
            None => write!(f, "{}", self.what),
        }
    }
}

fn violation(list: &mut Vec<Violation>, disk: Option<usize>, what: String) {
    list.push(Violation { disk, what });
}

/// Absolute-plus-relative tolerance for accumulated float sums.
fn tol(scale: f64) -> f64 {
    1e-6 + 1e-9 * scale.abs()
}

/// Checks the report-internal invariants (time coverage, energy
/// conservation, timeline contiguity, fault-counter accounting).
/// Returns every violation found; an empty vector means the report is
/// consistent.
pub fn check_report(report: &SimReport, params: &DiskParams, raid: &RaidConfig) -> Vec<Violation> {
    check_report_params(report, raid, &|_| *params)
}

/// Class-aware form of [`check_report`] for heterogeneous runs: each
/// disk is judged against its own tier's parameter set, energy
/// conservation is re-asserted *per tier* (not just per disk), the
/// report's per-tier aggregates must match a recomputation from the
/// per-disk counters, and migration byte accounting must balance (each
/// recorded move reads and writes its logical bytes exactly once).
pub fn check_report_tiered(
    report: &SimReport,
    config: &TierConfig,
    raid: &RaidConfig,
) -> Vec<Violation> {
    let mut v = check_report_params(report, raid, &|disk| *config.params_of_disk(disk));
    if report.per_disk.len() != config.num_disks() {
        violation(
            &mut v,
            None,
            format!(
                "report covers {} disks, tier config has {}",
                report.per_disk.len(),
                config.num_disks()
            ),
        );
        return v;
    }
    let members = f64::from(raid.members);
    let nt = config.num_tiers();
    for t in 0..nt {
        let lo = config.first_disk(t);
        let slice = &report.per_disk[lo..lo + config.tiers()[t].disks];
        let p = &config.tiers()[t].class.params;
        // Per-tier energy conservation: the tier's total energy must lie
        // within the summed per-disk bounds under the tier's own class
        // parameters.
        let mut tier_lo = 0.0;
        let mut tier_hi = 0.0;
        let energy: f64 = slice.iter().map(|d| d.energy_j).sum();
        for d in slice {
            let spinning_s = (d.busy_ms + d.idle_ms + d.transition_ms) / 1000.0;
            let standby_s = d.standby_ms / 1000.0;
            let lumps = p.spin_down_energy_j * d.spin_downs as f64
                + p.spin_up_energy_j * (d.spin_ups + d.faults) as f64;
            tier_lo += members * p.standby_power_w * (spinning_s + standby_s);
            tier_hi +=
                members * (p.active_power_w * spinning_s + p.standby_power_w * standby_s + lumps);
        }
        if energy < tier_lo - tol(tier_lo) || energy > tier_hi + tol(tier_hi) {
            violation(
                &mut v,
                None,
                format!(
                    "tier {t} energy {energy} J outside conservation bounds \
                     [{tier_lo}, {tier_hi}] J"
                ),
            );
        }
    }
    match &report.tiers {
        Some(tr) => {
            if tr.per_tier.len() != nt {
                violation(
                    &mut v,
                    None,
                    format!(
                        "tier report covers {} tiers, config has {nt}",
                        tr.per_tier.len()
                    ),
                );
                return v;
            }
            for (t, ts) in tr.per_tier.iter().enumerate() {
                let lo = config.first_disk(t);
                let slice = &report.per_disk[lo..lo + config.tiers()[t].disks];
                if ts.class != config.tiers()[t].class.name || ts.disks != config.tiers()[t].disks {
                    violation(
                        &mut v,
                        None,
                        format!(
                            "tier {t} summary says {}x{}, config says {}x{}",
                            ts.disks,
                            ts.class,
                            config.tiers()[t].disks,
                            config.tiers()[t].class.name
                        ),
                    );
                }
                let energy: f64 = slice.iter().map(|d| d.energy_j).sum();
                if (ts.energy_j - energy).abs() > tol(energy) {
                    violation(
                        &mut v,
                        None,
                        format!(
                            "tier {t} summary energy {} J, per-disk counters sum to {energy} J",
                            ts.energy_j
                        ),
                    );
                }
                let mig_req: u64 = slice.iter().map(|d| d.migration_requests).sum();
                let mig_bytes: u64 = slice.iter().map(|d| d.migration_bytes).sum();
                if ts.migration_requests != mig_req || ts.migration_bytes != mig_bytes {
                    violation(
                        &mut v,
                        None,
                        format!(
                            "tier {t} summary migration {}req/{}B, counters say \
                             {mig_req}req/{mig_bytes}B",
                            ts.migration_requests, ts.migration_bytes
                        ),
                    );
                }
            }
            // Migration byte balance: every recorded move reads its bytes
            // off the source tier and writes them onto the destination, so
            // the per-disk migration bytes must total exactly twice the
            // event bytes.
            let event_bytes: u64 = tr.events.iter().map(|e| e.bytes).sum();
            let moved = report.total_migration_bytes();
            if moved != 2 * event_bytes {
                violation(
                    &mut v,
                    None,
                    format!(
                        "disks moved {moved} migration bytes, events account for \
                         2x{event_bytes}"
                    ),
                );
            }
            for e in &tr.events {
                if e.from_tier >= nt || e.to_tier >= nt || e.from_tier == e.to_tier {
                    violation(
                        &mut v,
                        None,
                        format!(
                            "migration event for array {} names bad tiers {}->{}",
                            e.array, e.from_tier, e.to_tier
                        ),
                    );
                }
            }
        }
        None => {
            violation(&mut v, None, "tiered run is missing its tier report".into());
        }
    }
    v
}

/// The per-disk invariants with a per-disk parameter lookup (identical
/// parameters in the flat world, the tier's class in the tiered one).
fn check_report_params(
    report: &SimReport,
    raid: &RaidConfig,
    params_of: &dyn Fn(usize) -> DiskParams,
) -> Vec<Violation> {
    let mut v = Vec::new();
    let makespan = report.makespan_ms;
    if !makespan.is_finite() || makespan < 0.0 {
        violation(&mut v, None, format!("non-finite makespan {makespan}"));
        return v;
    }
    if report.total_io_time_ms > report.total_response_ms + tol(report.total_response_ms) {
        violation(
            &mut v,
            None,
            format!(
                "io time {} exceeds response time {}",
                report.total_io_time_ms, report.total_response_ms
            ),
        );
    }
    let members = f64::from(raid.members);
    for (disk, d) in report.per_disk.iter().enumerate() {
        let params = params_of(disk);
        let times = [d.busy_ms, d.idle_ms, d.standby_ms, d.transition_ms];
        if times.iter().any(|t| !t.is_finite() || *t < 0.0) {
            violation(
                &mut v,
                Some(disk),
                format!("negative/non-finite time {times:?}"),
            );
            continue;
        }
        // (1) Time coverage. Every other accrual is folded into request
        // completions (and therefore into the makespan); only a trailing
        // spin-down that the trace ends inside is charged in full past
        // the makespan, so the permitted slack is one transition pair.
        let wall = times.iter().sum::<f64>();
        let slack = params.spin_down_ms + params.spin_up_ms;
        if wall < makespan - tol(makespan) {
            violation(
                &mut v,
                Some(disk),
                format!("accounted wall {wall} ms falls short of makespan {makespan} ms"),
            );
        }
        if wall > makespan + slack + tol(makespan) {
            violation(
                &mut v,
                Some(disk),
                format!(
                    "accounted wall {wall} ms exceeds makespan {makespan} ms \
                     beyond the transition slack {slack} ms"
                ),
            );
        }
        // (2) Energy conservation.
        if !d.energy_j.is_finite() || d.energy_j < 0.0 {
            violation(&mut v, Some(disk), format!("bad energy {}", d.energy_j));
            continue;
        }
        let spinning_s = (d.busy_ms + d.idle_ms + d.transition_ms) / 1000.0;
        let standby_s = d.standby_ms / 1000.0;
        let lumps = params.spin_down_energy_j * d.spin_downs as f64
            + params.spin_up_energy_j * (d.spin_ups + d.faults) as f64;
        let lo = members * params.standby_power_w * (spinning_s + standby_s);
        let hi = members
            * (params.active_power_w * spinning_s + params.standby_power_w * standby_s + lumps);
        if d.energy_j < lo - tol(lo) || d.energy_j > hi + tol(hi) {
            violation(
                &mut v,
                Some(disk),
                format!(
                    "energy {} J outside conservation bounds [{lo}, {hi}] J",
                    d.energy_j
                ),
            );
        }
        // (4) Fault-counter accounting.
        let answered = d.retries + d.requeues;
        if answered > d.faults {
            violation(
                &mut v,
                Some(disk),
                format!(
                    "retries {} + requeues {} exceed faults {}",
                    d.retries, d.requeues, d.faults
                ),
            );
        }
        // Unanswered faults: at most one stuck-spindle detection, plus
        // timeouts (observations, never retried) are counted separately.
        if d.faults > answered + 1 {
            violation(
                &mut v,
                Some(disk),
                format!(
                    "faults {} not matched by retries {} + requeues {} (+1 stuck)",
                    d.faults, d.retries, d.requeues
                ),
            );
        }
        if d.degraded != (d.requeues > 0) {
            violation(
                &mut v,
                Some(disk),
                format!("degraded={} but requeues={}", d.degraded, d.requeues),
            );
        }
        if d.sequential_requests > d.requests {
            violation(
                &mut v,
                Some(disk),
                format!(
                    "sequential requests {} exceed requests {}",
                    d.sequential_requests, d.requests
                ),
            );
        }
        // Spin-state accounting: every spin-up answers a prior spin-down;
        // only a trailing spin-down (trace ends in standby) may go
        // unanswered. Holds under every policy — reactive timeout,
        // proactive, or compiler-directed.
        if d.spin_ups > d.spin_downs {
            violation(
                &mut v,
                Some(disk),
                format!("spin-ups {} exceed spin-downs {}", d.spin_ups, d.spin_downs),
            );
        }
    }
    // (3) Timeline coverage, when recorded.
    if let Some(timelines) = &report.timelines {
        for (disk, spans) in timelines.iter().enumerate() {
            let mut cursor = 0.0;
            let mut by_state = [0.0_f64; 4]; // busy, idle, standby, transition
            for s in spans {
                if (s.start_ms - cursor).abs() > tol(cursor) {
                    violation(
                        &mut v,
                        Some(disk),
                        format!(
                            "timeline gap/overlap at {cursor} ms (span starts {})",
                            s.start_ms
                        ),
                    );
                }
                if s.end_ms <= s.start_ms {
                    violation(
                        &mut v,
                        Some(disk),
                        format!("non-monotonic span [{}, {}]", s.start_ms, s.end_ms),
                    );
                }
                let idx = match s.state {
                    SpanState::Busy => 0,
                    SpanState::Idle(_) => 1,
                    SpanState::Standby => 2,
                    SpanState::Transition => 3,
                };
                by_state[idx] += s.end_ms - s.start_ms;
                cursor = s.end_ms;
            }
            if cursor < makespan - tol(makespan) {
                violation(
                    &mut v,
                    Some(disk),
                    format!("timeline ends at {cursor} ms, before makespan {makespan} ms"),
                );
            }
            if let Some(d) = report.per_disk.get(disk) {
                let scalars = [d.busy_ms, d.idle_ms, d.standby_ms, d.transition_ms];
                for (i, (tl, sc)) in by_state.iter().zip(&scalars).enumerate() {
                    if (tl - sc).abs() > tol(*sc) {
                        violation(
                            &mut v,
                            Some(disk),
                            format!("timeline state {i} totals {tl} ms, counters say {sc} ms"),
                        );
                    }
                }
            }
        }
    }
    v
}

/// Checks request conservation against the trace the report came from:
/// every application request splits into striping-determined pieces, and
/// each piece must be serviced exactly once — no request may be lost or
/// duplicated, faults or not.
pub fn check_trace_accounting(
    report: &SimReport,
    trace: &Trace,
    striping: &Striping,
) -> Vec<Violation> {
    let mut acc = TraceAccounting::new(striping.num_disks());
    let mut pieces: Vec<(usize, u64, u64)> = Vec::new();
    for r in trace.requests() {
        striping.split_range_into(r.offset, r.len, &mut pieces);
        acc.push(r, &pieces);
    }
    check_accounting(report, &acc)
}

/// Streaming form of [`check_trace_accounting`]: compares the report
/// against per-disk totals accumulated while the request stream was
/// consumed, so conservation is checkable without a materialized trace to
/// re-walk. Every streamed run in debug builds goes through this.
pub fn check_accounting(report: &SimReport, acc: &TraceAccounting) -> Vec<Violation> {
    let mut v = Vec::new();
    if report.app_requests != acc.app_requests {
        violation(
            &mut v,
            None,
            format!(
                "report counts {} app requests, stream carried {}",
                report.app_requests, acc.app_requests
            ),
        );
    }
    let n = acc.want_requests.len();
    if report.per_disk.len() != n {
        violation(
            &mut v,
            None,
            format!(
                "report covers {} disks, striping has {n}",
                report.per_disk.len()
            ),
        );
        return v;
    }
    for (disk, d) in report.per_disk.iter().enumerate() {
        if d.requests != acc.want_requests[disk] {
            violation(
                &mut v,
                Some(disk),
                format!(
                    "serviced {} sub-requests, striping projects {} (lost or duplicated work)",
                    d.requests, acc.want_requests[disk]
                ),
            );
        }
        if d.bytes != acc.want_bytes[disk] {
            violation(
                &mut v,
                Some(disk),
                format!(
                    "serviced {} bytes, striping projects {}",
                    d.bytes, acc.want_bytes[disk]
                ),
            );
        }
    }
    v
}

/// Runs both checkers against a materialized trace and panics with the
/// full violation list if any invariant fails.
///
/// # Panics
///
/// Panics when any invariant is violated.
pub fn assert_clean(
    report: &SimReport,
    params: &DiskParams,
    raid: &RaidConfig,
    trace: &Trace,
    striping: &Striping,
) {
    let mut v = check_report(report, params, raid);
    v.extend(check_trace_accounting(report, trace, striping));
    assert!(
        v.is_empty(),
        "simulator invariants violated:\n{}",
        v.iter().map(|x| format!("  - {x}\n")).collect::<String>()
    );
}

/// Streaming form of [`assert_clean`]: same report checks, request
/// conservation judged against the accounting the event loop accumulated.
/// This is what debug builds run after every
/// [`Simulator::run_stream`](crate::Simulator::run_stream) — and hence
/// after every [`Simulator::run`](crate::Simulator::run), whose `&Trace`
/// path is an adapter over the same loop.
///
/// # Panics
///
/// Panics when any invariant is violated.
pub fn assert_clean_streamed(
    report: &SimReport,
    params: &DiskParams,
    raid: &RaidConfig,
    acc: &TraceAccounting,
) {
    let mut v = check_report(report, params, raid);
    v.extend(check_accounting(report, acc));
    assert!(
        v.is_empty(),
        "simulator invariants violated:\n{}",
        v.iter().map(|x| format!("  - {x}\n")).collect::<String>()
    );
}

/// Tier-aware form of [`assert_clean_streamed`]: what debug builds run
/// after every heterogeneous [`Simulator::run_stream`](crate::Simulator)
/// — per-disk invariants under each disk's own class parameters, per-tier
/// energy conservation, tier-report consistency, migration byte balance,
/// and request conservation.
///
/// # Panics
///
/// Panics when any invariant is violated.
pub fn assert_clean_streamed_tiered(
    report: &SimReport,
    config: &TierConfig,
    raid: &RaidConfig,
    acc: &TraceAccounting,
) {
    let mut v = check_report_tiered(report, config, raid);
    v.extend(check_accounting(report, acc));
    assert!(
        v.is_empty(),
        "simulator invariants violated:\n{}",
        v.iter().map(|x| format!("  - {x}\n")).collect::<String>()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{PowerPolicy, TpmConfig};
    use crate::request::{IoRequest, RequestKind, Trace};
    use crate::Simulator;
    use dpm_faults::FaultPlan;

    fn read(t: f64, offset: u64, len: u64) -> IoRequest {
        IoRequest {
            arrival_ms: t,
            offset,
            len,
            kind: RequestKind::Read,
            proc_id: 0,
        }
    }

    fn trace() -> Trace {
        Trace::from_requests(
            (0..40u32)
                .map(|k| read(2_500.0 * f64::from(k), u64::from(k) * 8192, 16 * 1024))
                .collect(),
        )
    }

    #[test]
    fn clean_run_has_no_violations() {
        let striping = Striping::new(4096, 4, 0);
        let sim = Simulator::new(
            DiskParams::default(),
            PowerPolicy::Tpm(TpmConfig::default()),
            striping,
        )
        .with_timelines();
        let t = trace();
        let report = sim.run(&t);
        assert!(check_report(&report, &DiskParams::default(), &RaidConfig::single()).is_empty());
        assert!(check_trace_accounting(&report, &t, &striping).is_empty());
    }

    #[test]
    fn faulty_run_still_satisfies_invariants() {
        let striping = Striping::new(4096, 4, 0);
        let sim = Simulator::new(
            DiskParams::default(),
            PowerPolicy::Tpm(TpmConfig::proactive()),
            striping,
        )
        .with_faults(FaultPlan::chaos(7, 0.3))
        .with_timelines();
        let t = trace();
        let report = sim.run(&t);
        assert!(report.total_faults() > 0, "chaos plan injected nothing");
        assert!(check_report(&report, &DiskParams::default(), &RaidConfig::single()).is_empty());
        assert!(check_trace_accounting(&report, &t, &striping).is_empty());
    }

    #[test]
    fn detects_lost_requests() {
        let striping = Striping::new(4096, 2, 0);
        let sim = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
        let t = trace();
        let mut report = sim.run(&t);
        report.per_disk[0].requests -= 1;
        let v = check_trace_accounting(&report, &t, &striping);
        assert!(v.iter().any(|x| x.what.contains("lost or duplicated")));
    }

    #[test]
    fn detects_energy_violation() {
        let striping = Striping::new(4096, 2, 0);
        let sim = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
        let t = trace();
        let mut report = sim.run(&t);
        report.per_disk[0].energy_j *= 100.0;
        let v = check_report(&report, &DiskParams::default(), &RaidConfig::single());
        assert!(v.iter().any(|x| x.what.contains("conservation bounds")));
    }

    #[test]
    fn detects_spin_state_mismatch() {
        let striping = Striping::new(4096, 2, 0);
        let sim = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
        let t = trace();
        let mut report = sim.run(&t);
        report.per_disk[0].spin_ups = report.per_disk[0].spin_downs + 1;
        let v = check_report(&report, &DiskParams::default(), &RaidConfig::single());
        assert!(v.iter().any(|x| x.what.contains("exceed spin-downs")));
    }

    #[test]
    fn directive_run_satisfies_invariants() {
        let striping = Striping::new(4096, 2, 0);
        let params = DiskParams::default();
        let cfg = crate::params::DirectiveConfig::for_params(&params);
        let sim = Simulator::new(params, PowerPolicy::Directive(cfg), striping).with_timelines();
        // Two bursts separated by a window well past break-even, plus a
        // long trailing gap: exercises both the pre-activated and the
        // unanswered spin-down.
        let mut reqs: Vec<IoRequest> = (0..8u32)
            .map(|k| read(f64::from(k) * 10.0, u64::from(k) * 8192, 16 * 1024))
            .collect();
        reqs.extend((0..8u32).map(|k| {
            read(
                60_000.0 + f64::from(k) * 10.0,
                u64::from(k) * 8192,
                16 * 1024,
            )
        }));
        let t = Trace::from_requests(reqs);
        let report = sim.run(&t);
        assert!(
            report.total_spin_downs() > 0,
            "directive policy never engaged"
        );
        assert!(check_report(&report, &DiskParams::default(), &RaidConfig::single()).is_empty());
        assert!(check_trace_accounting(&report, &t, &striping).is_empty());
    }

    #[test]
    fn detects_counter_mismatch() {
        let striping = Striping::new(4096, 2, 0);
        let sim = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
        let t = trace();
        let mut report = sim.run(&t);
        report.per_disk[0].retries = 5; // retries with zero faults
        let v = check_report(&report, &DiskParams::default(), &RaidConfig::single());
        assert!(v.iter().any(|x| x.what.contains("exceed faults")));
    }
}
