//! Simulation statistics: per-disk accounting, idle-period histograms, and
//! the whole-run report with the paper's two headline metrics (disk energy
//! and disk I/O time).

use dpm_prof::DiskStreamMetrics;
use std::fmt;

/// Per-disk accounting accumulated by the simulator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiskStats {
    /// Sub-requests serviced.
    pub requests: u64,
    /// Sub-requests that continued sequentially from the previous one.
    pub sequential_requests: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Time spent servicing (ms).
    pub busy_ms: f64,
    /// Time spent spinning idle (at any RPM level) (ms).
    pub idle_ms: f64,
    /// Time spent spun down (ms).
    pub standby_ms: f64,
    /// Time spent in power-state/RPM transitions (ms).
    pub transition_ms: f64,
    /// Energy consumed (J).
    pub energy_j: f64,
    /// TPM spin-downs.
    pub spin_downs: u64,
    /// TPM spin-ups.
    pub spin_ups: u64,
    /// DRPM level changes.
    pub speed_changes: u64,
    /// Injected fault events that fired on this disk (spin-up failures,
    /// transient errors, stuck-spindle detections).
    pub faults: u64,
    /// Retries issued in response to faults (each waits out a capped
    /// exponential backoff before the next attempt).
    pub retries: u64,
    /// Sub-requests whose response exceeded the plan's timeout budget.
    pub timeouts: u64,
    /// Requests that exhausted their retries and were re-queued behind
    /// the degraded-disk recovery delay. Work is never dropped: a
    /// re-queued request still completes.
    pub requeues: u64,
    /// Whether the disk was marked degraded (a request exhausted its
    /// retries at least once).
    pub degraded: bool,
    /// Migration transfers serviced (hot/cold moves between tiers).
    /// Counted separately from `requests` so application-request
    /// conservation stays exact under migration.
    pub migration_requests: u64,
    /// Bytes moved by migration transfers (likewise separate from
    /// `bytes`).
    pub migration_bytes: u64,
}

/// Histogram of idle-period lengths with buckets chosen around the
/// power-management thresholds (the TPM break-even sits between the last
/// two interior bucket edges).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdleHistogram {
    counts: [u64; 6],
}

impl IdleHistogram {
    /// Bucket upper edges in milliseconds (the last bucket is unbounded).
    pub const EDGES_MS: [f64; 5] = [10.0, 100.0, 1_000.0, 15_200.0, 60_000.0];

    /// Human-readable bucket labels.
    pub const LABELS: [&'static str; 6] =
        ["<10ms", "10-100ms", "0.1-1s", "1-15.2s", "15.2-60s", ">60s"];

    /// Records one idle period.
    pub fn record(&mut self, ms: f64) {
        let ix = Self::EDGES_MS
            .iter()
            .position(|&e| ms < e)
            .unwrap_or(Self::EDGES_MS.len());
        self.counts[ix] += 1;
    }

    /// Count per bucket.
    pub fn counts(&self) -> &[u64; 6] {
        &self.counts
    }

    /// Total idle periods recorded.
    pub fn total_periods(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Periods at or above the TPM break-even bucket (≥ 15.2 s).
    pub fn spin_down_candidates(&self) -> u64 {
        self.counts[4] + self.counts[5]
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &IdleHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for IdleHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = Self::LABELS
            .iter()
            .zip(&self.counts)
            .map(|(l, c)| format!("{l}:{c}"))
            .collect();
        write!(f, "{}", parts.join(" "))
    }
}

/// One contiguous interval of a disk's power-state timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    /// Interval start (ms).
    pub start_ms: f64,
    /// Interval end (ms).
    pub end_ms: f64,
    /// What the disk was doing.
    pub state: SpanState,
}

/// The power state of a timeline span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanState {
    /// Servicing a request.
    Busy,
    /// Spinning idle at the given RPM.
    Idle(u32),
    /// Spun down.
    Standby,
    /// Spin-up/down or RPM transition.
    Transition,
}

/// Merges adjacent spans that share a state (the form in which a timeline
/// is reconstructible from `disk_state` events, which mark changes only).
pub fn coalesce_spans(spans: &[Span]) -> Vec<Span> {
    let mut out: Vec<Span> = Vec::new();
    for &s in spans {
        match out.last_mut() {
            Some(prev) if prev.state == s.state && (prev.end_ms - s.start_ms).abs() < 1e-9 => {
                prev.end_ms = s.end_ms;
            }
            _ => out.push(s),
        }
    }
    out
}

/// Rebuilds per-disk power-state timelines from an instrumentation event
/// stream: the `disk_state` events of run `run` each open a state at
/// `at_ms`; the state lasts until the disk's next event (or `end_ms`).
/// The result is coalesced — equal to [`coalesce_spans`] of the
/// simulator-recorded timeline of the same run.
pub fn timelines_from_events(
    events: &[dpm_obs::Event],
    run: u64,
    num_disks: usize,
    end_ms: f64,
) -> Vec<Vec<Span>> {
    let mut changes: Vec<Vec<(f64, SpanState)>> = vec![Vec::new(); num_disks];
    for ev in events {
        if ev.kind != dpm_obs::kind::DISK_STATE || ev.num("run") != Some(run as f64) {
            continue;
        }
        let (Some(disk), Some(at_ms)) = (ev.num("disk"), ev.num("at_ms")) else {
            continue;
        };
        let disk = disk as usize;
        if disk >= num_disks {
            continue;
        }
        let state = match ev.name.as_str() {
            "busy" => SpanState::Busy,
            "idle" => SpanState::Idle(ev.num("rpm").unwrap_or(0.0) as u32),
            "standby" => SpanState::Standby,
            "transition" => SpanState::Transition,
            _ => continue,
        };
        changes[disk].push((at_ms, state));
    }
    changes
        .into_iter()
        .map(|mut ch| {
            ch.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut spans = Vec::with_capacity(ch.len());
            for (i, &(at_ms, state)) in ch.iter().enumerate() {
                let end = ch.get(i + 1).map_or_else(|| end_ms.max(at_ms), |n| n.0);
                if end > at_ms {
                    spans.push(Span {
                        start_ms: at_ms,
                        end_ms: end,
                        state,
                    });
                }
            }
            spans
        })
        .collect()
}

/// Renders per-disk timelines as fixed-width ASCII strips:
/// `#` busy, `.` idle at full speed, `o` idle at reduced speed,
/// `_` standby, `~` transition.
pub fn ascii_timelines(timelines: &[Vec<Span>], makespan_ms: f64, width: usize) -> String {
    let width = width.max(8);
    let mut out = String::new();
    for (d, spans) in timelines.iter().enumerate() {
        let mut row = vec![' '; width];
        for span in spans {
            let a = ((span.start_ms / makespan_ms) * width as f64).floor() as usize;
            let b = ((span.end_ms / makespan_ms) * width as f64).ceil() as usize;
            let ch = match span.state {
                SpanState::Busy => '#',
                SpanState::Idle(rpm) if rpm < 15_000 => 'o',
                SpanState::Idle(_) => '.',
                SpanState::Standby => '_',
                SpanState::Transition => '~',
            };
            for c in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                // Busy wins over everything; standby over idle.
                let keep = matches!(*c, '#') || (*c == '_' && ch == '.');
                if !keep {
                    *c = ch;
                }
            }
        }
        out.push_str(&format!(
            "disk{d}: {}
",
            row.iter().collect::<String>()
        ));
    }
    out
}

/// One promote/demote decision taken by the online migration policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationEvent {
    /// Application-request index at whose window boundary the move fired.
    pub at_request: u64,
    /// The array moved.
    pub array: usize,
    /// Source tier.
    pub from_tier: usize,
    /// Destination tier.
    pub to_tier: usize,
    /// Logical bytes moved.
    pub bytes: u64,
}

/// Aggregated statistics for one tier of a heterogeneous run.
#[derive(Clone, Debug, PartialEq)]
pub struct TierStats {
    /// Class name of the tier's disks.
    pub class: &'static str,
    /// Disks in the tier.
    pub disks: usize,
    /// Energy consumed by the tier's disks (J).
    pub energy_j: f64,
    /// Busy time summed over the tier's disks (ms).
    pub busy_ms: f64,
    /// Standby time summed over the tier's disks (ms).
    pub standby_ms: f64,
    /// Spin-downs summed over the tier's disks.
    pub spin_downs: u64,
    /// Migration transfers serviced by the tier's disks.
    pub migration_requests: u64,
    /// Migration bytes moved through the tier's disks.
    pub migration_bytes: u64,
}

/// Tier-level results of a heterogeneous run: per-tier aggregates plus
/// the full promote/demote sequence (empty without online migration).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TierReport {
    /// One entry per tier, in tier order.
    pub per_tier: Vec<TierStats>,
    /// Promote/demote decisions in the order they fired.
    pub events: Vec<MigrationEvent>,
}

/// The result of simulating one trace.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Time of the last request completion (ms).
    pub makespan_ms: f64,
    /// Device-attributed disk I/O time: the sum over application requests
    /// of the slowest piece's power-management stall plus service time.
    /// This is the paper's "disk I/O time" performance metric — it charges
    /// each spin-up or speed penalty once, to the request that suffered it.
    pub total_io_time_ms: f64,
    /// Sum of application-visible response times (completion − arrival),
    /// including queueing behind earlier requests. With open-loop traces a
    /// single long stall inflates every queued request, so this is reported
    /// for analysis but not used for the Figure 10 degradation numbers.
    pub total_response_ms: f64,
    /// Per-disk statistics.
    pub per_disk: Vec<DiskStats>,
    /// Per-disk idle histograms.
    pub idle_histograms: Vec<IdleHistogram>,
    /// Application-level requests simulated.
    pub app_requests: u64,
    /// Per-disk power-state timelines, when recording was enabled via
    /// [`Simulator::with_timelines`](crate::Simulator::with_timelines).
    pub timelines: Option<Vec<Vec<Span>>>,
    /// The instrumentation run id stamped on this run's `disk_state`
    /// events (see [`timelines_from_events`]). Zero for hand-built
    /// reports.
    pub obs_run: u64,
    /// Per-disk streaming metrics (service-time and spin-up-latency
    /// histograms, queue-depth gauge, RPM residency), computed
    /// incrementally with O(1) memory per disk. Empty for hand-built
    /// reports.
    pub stream: Vec<DiskStreamMetrics>,
    /// Tier-level results for heterogeneous runs (see
    /// [`Simulator::with_tiers`](crate::Simulator::with_tiers)). `None`
    /// for flat single-class runs, keeping their reports byte-identical
    /// to the pre-tier simulator.
    pub tiers: Option<TierReport>,
}

impl SimReport {
    /// Total disk energy over all I/O nodes (J).
    pub fn total_energy_j(&self) -> f64 {
        self.per_disk.iter().map(|d| d.energy_j).sum()
    }

    /// Total sub-requests over all disks.
    pub fn total_sub_requests(&self) -> u64 {
        self.per_disk.iter().map(|d| d.requests).sum()
    }

    /// Total bytes over all disks.
    pub fn total_bytes(&self) -> u64 {
        self.per_disk.iter().map(|d| d.bytes).sum()
    }

    /// Energy of this run relative to `base` (1.0 = equal; < 1 = saving).
    pub fn normalized_energy(&self, base: &SimReport) -> f64 {
        self.total_energy_j() / base.total_energy_j()
    }

    /// Fractional energy saving vs `base` (positive = saved).
    pub fn energy_saving_vs(&self, base: &SimReport) -> f64 {
        1.0 - self.normalized_energy(base)
    }

    /// Fractional I/O-time degradation vs `base` (positive = slower).
    pub fn degradation_vs(&self, base: &SimReport) -> f64 {
        self.total_io_time_ms / base.total_io_time_ms - 1.0
    }

    /// Merged idle histogram over all disks.
    pub fn merged_idle_histogram(&self) -> IdleHistogram {
        let mut h = IdleHistogram::default();
        for d in &self.idle_histograms {
            h.merge(d);
        }
        h
    }

    /// Merged streaming metrics over all disks (exact — histogram merge
    /// is per-bucket addition). Empty when the report carries none.
    pub fn merged_stream_metrics(&self) -> DiskStreamMetrics {
        let mut m = DiskStreamMetrics::new();
        for d in &self.stream {
            m.merge(d);
        }
        m
    }

    /// Total spin-downs across disks.
    pub fn total_spin_downs(&self) -> u64 {
        self.per_disk.iter().map(|d| d.spin_downs).sum()
    }

    /// Total DRPM speed changes across disks.
    pub fn total_speed_changes(&self) -> u64 {
        self.per_disk.iter().map(|d| d.speed_changes).sum()
    }

    /// Total injected fault events across disks.
    pub fn total_faults(&self) -> u64 {
        self.per_disk.iter().map(|d| d.faults).sum()
    }

    /// Total fault retries across disks.
    pub fn total_retries(&self) -> u64 {
        self.per_disk.iter().map(|d| d.retries).sum()
    }

    /// Total request timeouts across disks.
    pub fn total_timeouts(&self) -> u64 {
        self.per_disk.iter().map(|d| d.timeouts).sum()
    }

    /// Total degraded-disk re-queues across disks.
    pub fn total_requeues(&self) -> u64 {
        self.per_disk.iter().map(|d| d.requeues).sum()
    }

    /// How many disks ended the run marked degraded.
    pub fn degraded_disks(&self) -> usize {
        self.per_disk.iter().filter(|d| d.degraded).count()
    }

    /// Total migration transfers serviced across disks.
    pub fn total_migration_requests(&self) -> u64 {
        self.per_disk.iter().map(|d| d.migration_requests).sum()
    }

    /// Total migration bytes moved across disks (reads + writes, so a
    /// one-array move counts its logical bytes twice).
    pub fn total_migration_bytes(&self) -> u64 {
        self.per_disk.iter().map(|d| d.migration_bytes).sum()
    }

    /// An unachievable *oracle* lower bound on energy for this run's disk
    /// activity: every disk pays active power exactly while busy and
    /// standby power the rest of the makespan, with free instantaneous
    /// transitions. Useful context for how much headroom a power policy
    /// leaves.
    pub fn oracle_energy_j(&self, params: &crate::DiskParams) -> f64 {
        self.per_disk
            .iter()
            .map(|d| {
                let busy_s = d.busy_ms / 1000.0;
                let rest_s = (self.makespan_ms - d.busy_ms).max(0.0) / 1000.0;
                params.active_power_w * busy_s + params.standby_power_w * rest_s
            })
            .sum()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "makespan {:.1} s, energy {:.1} J, io-time {:.1} s, {} app reqs / {} sub-reqs",
            self.makespan_ms / 1000.0,
            self.total_energy_j(),
            self.total_io_time_ms / 1000.0,
            self.app_requests,
            self.total_sub_requests(),
        )?;
        for (i, d) in self.per_disk.iter().enumerate() {
            write!(
                f,
                "  disk{i}: busy {:.1}s idle {:.1}s standby {:.1}s trans {:.1}s energy {:.1}J \
                 reqs {} (seq {}) downs {} ups {} speed-chg {}",
                d.busy_ms / 1000.0,
                d.idle_ms / 1000.0,
                d.standby_ms / 1000.0,
                d.transition_ms / 1000.0,
                d.energy_j,
                d.requests,
                d.sequential_requests,
                d.spin_downs,
                d.spin_ups,
                d.speed_changes,
            )?;
            if d.faults > 0 || d.timeouts > 0 {
                write!(
                    f,
                    " faults {} retries {} timeouts {} requeues {}{}",
                    d.faults,
                    d.retries,
                    d.timeouts,
                    d.requeues,
                    if d.degraded { " DEGRADED" } else { "" },
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        let mut h = IdleHistogram::default();
        h.record(1.0);
        h.record(50.0);
        h.record(500.0);
        h.record(5_000.0);
        h.record(20_000.0);
        h.record(100_000.0);
        assert_eq!(h.counts(), &[1, 1, 1, 1, 1, 1]);
        assert_eq!(h.total_periods(), 6);
        assert_eq!(h.spin_down_candidates(), 2);
    }

    /// Exact bucket-boundary semantics: a period equal to an edge belongs
    /// to the bucket *above* that edge (consistent with
    /// `dpm_obs::Histogram::idle_period_ms`, which uses the same edges).
    #[test]
    fn histogram_exact_edges_go_to_the_upper_bucket() {
        let mut h = IdleHistogram::default();
        for edge in [10.0, 100.0, 1_000.0, 15_200.0, 60_000.0] {
            h.record(edge);
        }
        assert_eq!(h.counts(), &[0, 1, 1, 1, 1, 1]);
        // Infinitesimally below each edge lands one bucket lower.
        let mut low = IdleHistogram::default();
        for edge in IdleHistogram::EDGES_MS {
            low.record(edge - 1e-9);
        }
        assert_eq!(low.counts(), &[1, 1, 1, 1, 1, 0]);
        // The break-even edge itself (15.2 s) counts as a candidate.
        assert_eq!(h.spin_down_candidates(), 2);
        assert_eq!(low.spin_down_candidates(), 1);
    }

    #[test]
    fn histogram_edges_agree_with_obs_preset() {
        assert_eq!(
            dpm_obs::Histogram::idle_period_ms().edges(),
            &IdleHistogram::EDGES_MS
        );
    }

    #[test]
    fn histogram_merge() {
        let mut a = IdleHistogram::default();
        a.record(1.0);
        let mut b = IdleHistogram::default();
        b.record(1.0);
        b.record(100_000.0);
        a.merge(&b);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.counts()[5], 1);
    }

    #[test]
    fn ascii_timeline_renders_states() {
        let spans = vec![vec![
            Span {
                start_ms: 0.0,
                end_ms: 25.0,
                state: SpanState::Busy,
            },
            Span {
                start_ms: 25.0,
                end_ms: 50.0,
                state: SpanState::Idle(15_000),
            },
            Span {
                start_ms: 50.0,
                end_ms: 75.0,
                state: SpanState::Standby,
            },
            Span {
                start_ms: 75.0,
                end_ms: 100.0,
                state: SpanState::Idle(3_000),
            },
        ]];
        let art = ascii_timelines(&spans, 100.0, 40);
        assert!(art.starts_with("disk0: "));
        for ch in ['#', '.', '_', 'o'] {
            assert!(art.contains(ch), "missing {ch} in {art}");
        }
    }

    #[test]
    fn coalesce_merges_adjacent_equal_states() {
        let spans = [
            Span {
                start_ms: 0.0,
                end_ms: 1.0,
                state: SpanState::Busy,
            },
            Span {
                start_ms: 1.0,
                end_ms: 2.0,
                state: SpanState::Busy,
            },
            Span {
                start_ms: 2.0,
                end_ms: 3.0,
                state: SpanState::Idle(15_000),
            },
            Span {
                start_ms: 3.0,
                end_ms: 4.0,
                state: SpanState::Idle(3_000),
            },
            Span {
                start_ms: 4.0,
                end_ms: 5.0,
                state: SpanState::Busy,
            },
        ];
        let merged = coalesce_spans(&spans);
        assert_eq!(merged.len(), 4);
        assert_eq!(
            merged[0],
            Span {
                start_ms: 0.0,
                end_ms: 2.0,
                state: SpanState::Busy
            }
        );
        // Different RPM levels are different states.
        assert_eq!(merged[1].state, SpanState::Idle(15_000));
        assert_eq!(merged[2].state, SpanState::Idle(3_000));
    }

    #[test]
    fn timelines_rebuild_from_events() {
        use dpm_obs::{kind, Event};
        let mk = |at_ms: f64, disk: usize, name: &str, rpm: u32| {
            Event::new(0, kind::DISK_STATE, name)
                .field("run", 7u64)
                .field("disk", disk)
                .field("at_ms", at_ms)
                .field("rpm", rpm)
        };
        let events = vec![
            mk(0.0, 0, "idle", 15_000),
            mk(10.0, 0, "busy", 15_000),
            mk(12.0, 0, "standby", 0),
            mk(0.0, 1, "idle", 15_000),
            // Wrong run: must be ignored.
            Event::new(0, kind::DISK_STATE, "busy")
                .field("run", 8u64)
                .field("disk", 1usize)
                .field("at_ms", 5.0)
                .field("rpm", 15_000u32),
        ];
        let tl = timelines_from_events(&events, 7, 2, 20.0);
        assert_eq!(tl.len(), 2);
        assert_eq!(
            tl[0],
            vec![
                Span {
                    start_ms: 0.0,
                    end_ms: 10.0,
                    state: SpanState::Idle(15_000)
                },
                Span {
                    start_ms: 10.0,
                    end_ms: 12.0,
                    state: SpanState::Busy
                },
                Span {
                    start_ms: 12.0,
                    end_ms: 20.0,
                    state: SpanState::Standby
                },
            ]
        );
        assert_eq!(
            tl[1],
            vec![Span {
                start_ms: 0.0,
                end_ms: 20.0,
                state: SpanState::Idle(15_000)
            }]
        );
    }

    #[test]
    fn oracle_bound_is_below_any_real_energy() {
        let params = crate::DiskParams::default();
        let d = DiskStats {
            busy_ms: 10_000.0,
            idle_ms: 90_000.0,
            energy_j: 13.5 * 10.0 + 10.2 * 90.0, // base-policy accounting
            ..DiskStats::default()
        };
        let r = SimReport {
            makespan_ms: 100_000.0,
            total_io_time_ms: 0.0,
            total_response_ms: 0.0,
            timelines: None,
            per_disk: vec![d],
            idle_histograms: vec![IdleHistogram::default()],
            app_requests: 0,
            obs_run: 0,
            stream: Vec::new(),
            tiers: None,
        };
        let oracle = r.oracle_energy_j(&params);
        let expect = 13.5 * 10.0 + 2.5 * 90.0;
        assert!((oracle - expect).abs() < 1e-9);
        assert!(oracle < r.total_energy_j());
    }

    #[test]
    fn report_aggregation() {
        let d = DiskStats {
            energy_j: 10.0,
            requests: 3,
            bytes: 300,
            ..DiskStats::default()
        };
        let r = SimReport {
            makespan_ms: 100.0,
            total_io_time_ms: 50.0,
            total_response_ms: 50.0,
            timelines: None,
            per_disk: vec![d.clone(), d],
            idle_histograms: vec![IdleHistogram::default(); 2],
            app_requests: 4,
            obs_run: 0,
            stream: Vec::new(),
            tiers: None,
        };
        assert_eq!(r.total_energy_j(), 20.0);
        assert_eq!(r.total_sub_requests(), 6);
        assert_eq!(r.total_bytes(), 600);
        let base = SimReport {
            total_io_time_ms: 40.0,
            ..r.clone()
        };
        assert!((r.degradation_vs(&base) - 0.25).abs() < 1e-12);
        assert!((r.energy_saving_vs(&base) - 0.0).abs() < 1e-12);
    }
}
