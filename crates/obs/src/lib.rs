//! # dpm-obs — zero-dependency instrumentation for the whole pipeline
//!
//! The paper's argument is about *observable* idle-period structure: the
//! restructured schedules save energy because of what each disk's
//! power-state timeline looks like. This crate is the always-available
//! instrumentation layer the rest of the workspace records that structure
//! with:
//!
//! * **Spans** — [`span`] / [`span!`] return a guard that emits
//!   `span_begin`/`span_end` events with wall-clock duration, nesting
//!   (parent ids via a per-thread stack), and per-span counters. Compiler
//!   passes wrap their phases in spans; the bench harness turns the
//!   resulting durations into per-pass timing tables.
//! * **Events** — a typed record ([`Event`]) flows through an
//!   [`EventSink`]; built-in sinks are the in-memory [`MemorySink`] (with
//!   a [`Collector`] read handle) and the [`JsonLinesSink`] file writer.
//!   The simulator emits per-disk power-state transitions, the trace
//!   generator request-issue events.
//! * **Metrics** — [`Counter`], [`Gauge`], and [`Histogram`] with
//!   configurable bucket edges (the simulator's idle-period histogram,
//!   generalized).
//!
//! Everything funnels through one global, thread-safe registry so
//! multi-processor stages can record from any thread. The switch is a
//! single relaxed atomic: with instrumentation disabled (the default) the
//! only cost at an instrumentation point is that load, so hot paths stay
//! hot.
//!
//! ```
//! use dpm_obs as obs;
//!
//! let collector = obs::install_collector();
//! obs::enable();
//! {
//!     let mut sp = obs::span!("demo_pass");
//!     sp.add("items", 3);
//! } // span_end emitted here
//! obs::disable();
//! let events = collector.snapshot();
//! assert_eq!(events.last().unwrap().kind, "span_end");
//! assert_eq!(events.last().unwrap().num("items"), Some(3.0));
//! # obs::clear_sinks();
//! ```
//!
//! The environment contract (used by the binaries via
//! [`init_from_env`]): `DPM_OBS` unset/`0`/`off` → disabled;
//! `DPM_OBS=1` (or any other value) → enabled, JSON-Lines events written
//! to `$DPM_OBS_PATH` (default `dpm-obs.jsonl`); `DPM_OBS=verbose` →
//! additionally emit per-access cache-hit events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod rng;
pub mod sink;

pub use event::{kind, parse_json_lines, Event, Value};
pub use json::{Json, JsonError};
pub use metrics::{Counter, Gauge, Histogram};
pub use rng::XorShift64Star;
pub use sink::{read_json_lines, span_durations, Collector, EventSink, JsonLinesSink, MemorySink};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static VERBOSE: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_RUN_ID: AtomicU64 = AtomicU64::new(1);

struct Registry {
    sinks: Vec<Box<dyn EventSink>>,
    epoch: Instant,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            sinks: Vec::new(),
            epoch: Instant::now(),
        })
    })
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Whether instrumentation is on. One relaxed atomic load — the entire
/// cost of a disabled instrumentation point.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether verbose (per-access) events are requested too.
#[inline]
pub fn verbose() -> bool {
    VERBOSE.load(Ordering::Relaxed)
}

/// Turns instrumentation on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns instrumentation off (sinks stay installed).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Turns per-access (verbose) events on or off.
pub fn set_verbose(on: bool) {
    VERBOSE.store(on, Ordering::Relaxed);
}

/// Microseconds since the registry epoch (first use of the registry).
pub fn now_us() -> u64 {
    let epoch = registry().lock().expect("obs registry poisoned").epoch;
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Installs a sink; events are fanned out to every installed sink.
pub fn install_sink(sink: Box<dyn EventSink>) {
    registry()
        .lock()
        .expect("obs registry poisoned")
        .sinks
        .push(sink);
}

/// Convenience: installs a [`MemorySink`] and returns its read handle.
pub fn install_collector() -> Collector {
    let (sink, collector) = MemorySink::new();
    install_sink(Box::new(sink));
    collector
}

/// Flushes every installed sink.
pub fn flush() {
    for s in &mut registry().lock().expect("obs registry poisoned").sinks {
        s.flush_sink();
    }
}

/// Removes (and flushes) all installed sinks. Mainly for tests and for
/// binaries that install per-phase sinks.
pub fn clear_sinks() {
    let mut reg = registry().lock().expect("obs registry poisoned");
    for s in &mut reg.sinks {
        s.flush_sink();
    }
    reg.sinks.clear();
}

/// A fresh identifier tying together the events of one logical run
/// (e.g. one simulation); lets consumers separate interleaved runs in a
/// single event stream.
pub fn next_run_id() -> u64 {
    NEXT_RUN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Emits one event through the registry (no-op when disabled).
pub fn emit(kind: &str, name: &str, fields: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("obs registry poisoned");
    let ts_us = u64::try_from(reg.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
    let mut ev = Event::new(ts_us, kind, name);
    ev.fields = fields
        .iter()
        .map(|(k, v)| ((*k).to_string(), v.clone()))
        .collect();
    for s in &mut reg.sinks {
        s.record(&ev);
    }
}

/// Emits an already-built event, stamping its timestamp (no-op when
/// disabled).
pub fn emit_event(mut ev: Event) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("obs registry poisoned");
    ev.ts_us = u64::try_from(reg.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
    for s in &mut reg.sinks {
        s.record(&ev);
    }
}

/// Initializes from the environment (see the crate docs for the
/// contract). Returns whether instrumentation ended up enabled. Intended
/// for binaries; libraries should leave the decision to their caller.
pub fn init_from_env() -> bool {
    let Some(value) = std::env::var_os("DPM_OBS") else {
        return false;
    };
    let value = value.to_string_lossy().to_string();
    match value.as_str() {
        "" | "0" | "false" | "off" => return false,
        "verbose" | "full" | "2" => set_verbose(true),
        _ => {}
    }
    let path = std::env::var_os("DPM_OBS_PATH")
        .map(|p| p.to_string_lossy().to_string())
        .unwrap_or_else(|| "dpm-obs.jsonl".to_string());
    match JsonLinesSink::create(&path) {
        Ok(sink) => {
            install_sink(Box::new(sink));
            eprintln!("dpm-obs: writing events to {path}");
        }
        Err(e) => eprintln!("dpm-obs: cannot open {path}: {e}; events will be dropped"),
    }
    enable();
    true
}

/// Live state of an open span.
struct SpanData {
    name: &'static str,
    id: u64,
    parent: u64,
    start_us: u64,
    counters: Vec<(&'static str, u64)>,
}

/// Guard object returned by [`span`]: emits `span_end` (with duration and
/// accumulated counters) when dropped. Inert — a single `None` — when
/// instrumentation is disabled.
pub struct SpanGuard {
    data: Option<SpanData>,
}

impl SpanGuard {
    /// Whether this guard is actually recording.
    pub fn active(&self) -> bool {
        self.data.is_some()
    }

    /// Adds to a named per-span counter (created on first use); the totals
    /// ride on the `span_end` event.
    pub fn add(&mut self, key: &'static str, delta: u64) {
        if let Some(data) = &mut self.data {
            match data.counters.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v += delta,
                None => data.counters.push((key, delta)),
            }
        }
    }

    /// Increments a named per-span counter by one.
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.last() == Some(&data.id) {
                stack.pop();
            } else {
                // Out-of-order drop (guards moved across scopes): remove
                // wherever it is so nesting stays consistent.
                stack.retain(|&id| id != data.id);
            }
        });
        let end_us = now_us();
        let mut ev = Event::new(0, kind::SPAN_END, data.name)
            .field("id", data.id)
            .field("parent", data.parent)
            .field("dur_us", end_us.saturating_sub(data.start_us));
        for (k, v) in data.counters {
            ev = ev.field(k, v);
        }
        emit_event(ev);
    }
}

/// Opens a span. When instrumentation is enabled this emits `span_begin`,
/// pushes the span onto the thread's nesting stack, and returns a guard
/// whose drop emits `span_end`; when disabled it returns an inert guard.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { data: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    let start_us = now_us();
    emit_event(
        Event::new(0, kind::SPAN_BEGIN, name)
            .field("id", id)
            .field("parent", parent),
    );
    SpanGuard {
        data: Some(SpanData {
            name,
            id,
            parent,
            start_us,
            counters: Vec::new(),
        }),
    }
}

/// `span!("name")` — sugar for [`span`], mirroring the usual tracing-macro
/// shape.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fresh() -> Collector {
        clear_sinks();
        disable();
        set_verbose(false);
        install_collector()
    }

    #[test]
    fn disabled_means_no_events_and_inert_guards() {
        let _guard = lock();
        let collector = fresh();
        {
            let mut sp = span!("quiet");
            sp.add("n", 1);
            assert!(!sp.active());
        }
        emit(kind::COUNTER, "c", &[("value", 1u64.into())]);
        assert!(collector.is_empty());
        clear_sinks();
    }

    #[test]
    fn spans_nest_and_carry_counters() {
        let _guard = lock();
        let collector = fresh();
        enable();
        {
            let mut outer = span("outer");
            outer.add("items", 2);
            outer.add("items", 3);
            {
                let _inner = span("inner");
            }
        }
        disable();
        let events = collector.snapshot();
        clear_sinks();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["span_begin", "span_begin", "span_end", "span_end"]);
        let outer_id = events[0].num("id").unwrap();
        let inner_begin = &events[1];
        assert_eq!(inner_begin.num("parent"), Some(outer_id));
        let outer_end = &events[3];
        assert_eq!(outer_end.name, "outer");
        assert_eq!(outer_end.num("items"), Some(5.0));
        assert_eq!(events[2].num("parent"), Some(outer_id));
        // Durations are sane: inner ended before outer.
        assert!(outer_end.num("dur_us").unwrap() >= events[2].num("dur_us").unwrap());
    }

    #[test]
    fn events_fan_out_to_all_sinks() {
        let _guard = lock();
        let c1 = fresh();
        let c2 = install_collector();
        enable();
        emit(kind::GAUGE, "g", &[("value", 1.5.into())]);
        disable();
        assert_eq!(c1.len(), 1);
        assert_eq!(c2.len(), 1);
        assert_eq!(c1.snapshot()[0].num("value"), Some(1.5));
        clear_sinks();
    }

    #[test]
    fn run_ids_are_unique() {
        let a = next_run_id();
        let b = next_run_id();
        assert_ne!(a, b);
    }

    #[test]
    fn timestamps_are_monotone() {
        let _guard = lock();
        let collector = fresh();
        enable();
        for _ in 0..5 {
            emit(kind::COUNTER, "tick", &[]);
        }
        disable();
        let events = collector.snapshot();
        clear_sinks();
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn metric_emit_goes_through_registry() {
        let _guard = lock();
        let collector = fresh();
        enable();
        let mut c = Counter::new();
        c.add(7);
        c.emit("my_counter");
        let mut h = Histogram::new(vec![1.0]);
        h.record(0.5);
        h.record(3.0);
        h.emit("my_hist");
        disable();
        let events = collector.snapshot();
        clear_sinks();
        assert_eq!(events[0].name, "my_counter");
        assert_eq!(events[0].num("value"), Some(7.0));
        assert_eq!(events[1].num("bucket0"), Some(1.0));
        assert_eq!(events[1].num("bucket1"), Some(1.0));
    }
}
