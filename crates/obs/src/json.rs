//! A minimal JSON value, encoder, and parser — just enough for the
//! JSON-Lines event stream and the machine-readable run reports, with no
//! external dependencies.
//!
//! Numbers are kept in three flavours (`U64`, `I64`, `F64`) so that event
//! payloads round-trip exactly: integers are emitted without a decimal
//! point and re-parsed into the same variant, while floats are emitted with
//! Rust's shortest round-trip formatting.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (no decimal point, no sign).
    U64(u64),
    /// A negative integer (no decimal point).
    I64(i64),
    /// Any number with a decimal point or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(x) => Some(x),
            Json::I64(x) => u64::try_from(x).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(x) => Some(x as f64),
            Json::I64(x) => Some(x as f64),
            Json::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes into `out` (compact, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(x) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*x, &mut buf));
            }
            Json::I64(x) => out.push_str(&x.to_string()),
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, requiring it to span the whole input
    /// (modulo surrounding whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn fmt_u64(mut x: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (x % 10) as u8;
        x /= 10;
        if x == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

/// Emits a float that always re-parses as `F64`: Rust's `{:?}` shortest
/// round-trip form, which keeps a `.0` on whole numbers. Non-finite values
/// (not representable in JSON) degrade to `null`.
fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        use fmt::Write as _;
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Unpaired surrogates degrade to the
                            // replacement character; the encoder never
                            // emits surrogate escapes.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let s = v.to_string();
        let back = Json::parse(&s).unwrap_or_else(|e| panic!("{e} in {s}"));
        assert_eq!(&back, v, "via {s}");
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-1),
            Json::I64(i64::MIN),
            Json::F64(0.5),
            Json::F64(1.0),
            Json::F64(-1234.5678),
            Json::F64(1e300),
            Json::Str(String::new()),
            Json::Str("hello \"quoted\" \\ line\nend\ttab\u{1}".into()),
            Json::Str("unicode: ✓ λ 漢".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::obj(vec![
            ("empty_arr", Json::Arr(vec![])),
            (
                "arr",
                Json::Arr(vec![Json::U64(1), Json::Null, Json::Str("x".into())]),
            ),
            ("nested", Json::obj(vec![("k", Json::F64(2.5))])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn integers_keep_their_variant() {
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::I64(-42));
        assert_eq!(Json::parse("42.0").unwrap(), Json::F64(42.0));
        assert_eq!(Json::parse("1e2").unwrap(), Json::F64(100.0));
    }

    #[test]
    fn whitespace_and_accessors() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"s\" } ").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("s"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn errors_are_reported() {
        for bad in ["", "{", "[1,", "\"unterminated", "{\"k\":}", "tru", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }
}
