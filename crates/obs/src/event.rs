//! The typed event record that flows through every sink, and its exact
//! JSON-Lines representation.
//!
//! One event is one line:
//!
//! ```json
//! {"ts_us":1234,"kind":"span_end","name":"single_cpu_schedule","fields":{"id":3,"dur_us":812,"rounds":1}}
//! ```
//!
//! `kind` is a small closed vocabulary (see [`kind`]); `name` identifies
//! the span / counter / state within that kind; `fields` carries numeric
//! and string payload values. Encoding and re-parsing an event yields an
//! identical [`Event`] (covered by tests), so a JSON-Lines file is a
//! faithful serialization of the in-memory stream.

use crate::json::{Json, JsonError};

/// Well-known values of [`Event::kind`]. Sinks must pass through unknown
/// kinds untouched, so downstream crates can add their own.
pub mod kind {
    /// A span opened (`name` = span name; fields: `id`, `parent`).
    pub const SPAN_BEGIN: &str = "span_begin";
    /// A span closed (fields: `id`, `parent`, `dur_us`, plus one field per
    /// span counter).
    pub const SPAN_END: &str = "span_end";
    /// A standalone counter observation (fields: `value`).
    pub const COUNTER: &str = "counter";
    /// A standalone gauge observation (fields: `value`).
    pub const GAUGE: &str = "gauge";
    /// A disk power-state transition (`name` = state; fields: `run`,
    /// `disk`, `at_ms`, `rpm`).
    pub const DISK_STATE: &str = "disk_state";
    /// An I/O request issued by the trace generator (fields: `proc`,
    /// `at_ms`, `offset`, `len`, plus `op` as a string field).
    pub const REQUEST: &str = "request";
    /// A reuse-window (cache filter) hit in the trace generator; emitted
    /// per access only in verbose mode (fields: `proc`, `block`).
    pub const CACHE_HIT: &str = "cache_hit";
    /// An injected fault fired in the simulator (`name` = fault class:
    /// `spin_up_failure`, `transient_error`, `stuck_rpm`, `latency_jitter`,
    /// `timeout`; fields: `run`, `disk`, `at_ms`, plus class-specific
    /// payload such as `jitter_ms`).
    pub const FAULT: &str = "fault";
    /// The simulator retried a faulted operation (fields: `run`, `disk`,
    /// `at_ms`, `attempt`, `backoff_ms`).
    pub const RETRY: &str = "retry";
    /// A disk exhausted its retries and was marked degraded; the failed
    /// request is re-queued behind a recovery delay (fields: `run`,
    /// `disk`, `at_ms`).
    pub const DEGRADE: &str = "degrade";
    /// A static-analysis diagnostic from `dpm-analyze` (`name` = stable
    /// diagnostic code; fields: `severity`, plus location fields `nest`,
    /// `stmt`, `array`, `line`, `col` where known, and `message`).
    pub const DIAGNOSTIC: &str = "diagnostic";
}

/// A field value: three numeric flavours (kept apart so JSON round-trips
/// exactly) plus strings.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (used when negative).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Str(String),
}

impl Value {
    /// Numeric view of the value, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            Value::F64(x) => Some(*x),
            Value::Str(_) => None,
        }
    }

    /// Unsigned view of the value, when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn to_json(&self) -> Json {
        match self {
            Value::U64(x) => Json::U64(*x),
            Value::I64(x) => Json::I64(*x),
            Value::F64(x) => Json::F64(*x),
            Value::Str(s) => Json::Str(s.clone()),
        }
    }

    fn from_json(j: &Json) -> Option<Value> {
        match j {
            Json::U64(x) => Some(Value::U64(*x)),
            Json::I64(x) => Some(Value::I64(*x)),
            Json::F64(x) => Some(Value::F64(*x)),
            Json::Str(s) => Some(Value::Str(s.clone())),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Value {
        Value::U64(x)
    }
}

impl From<u32> for Value {
    fn from(x: u32) -> Value {
        Value::U64(u64::from(x))
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Value {
        Value::U64(x as u64)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Value {
        if x >= 0 {
            Value::U64(x as u64)
        } else {
            Value::I64(x)
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

/// One instrumentation event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Wall-clock microseconds since the registry epoch (process start of
    /// instrumentation, not Unix time — deltas are meaningful, absolutes
    /// are not).
    pub ts_us: u64,
    /// Event type tag; see [`kind`].
    pub kind: String,
    /// Name within the kind: span name, counter name, power-state name, …
    pub name: String,
    /// Payload fields, in insertion order. Keys are unique per event.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Creates an event (timestamp supplied by the registry).
    pub fn new(ts_us: u64, kind: &str, name: &str) -> Event {
        Event {
            ts_us,
            kind: kind.to_string(),
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Adds a field (builder style).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Event {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric field shorthand.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Value::as_f64)
    }

    /// The exact JSON-Lines representation (one line, no trailing newline).
    pub fn to_json_line(&self) -> String {
        let fields = Json::Obj(
            self.fields
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Json::obj(vec![
            ("ts_us", Json::U64(self.ts_us)),
            ("kind", Json::Str(self.kind.clone())),
            ("name", Json::Str(self.name.clone())),
            ("fields", fields),
        ])
        .to_string()
    }

    /// Parses one JSON-Lines line back into an event.
    pub fn from_json_line(line: &str) -> Result<Event, JsonError> {
        let bad = |msg| JsonError { at: 0, msg };
        let j = Json::parse(line)?;
        let ts_us = j
            .get("ts_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing ts_us"))?;
        let kind = j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing kind"))?;
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing name"))?;
        let mut ev = Event::new(ts_us, kind, name);
        if let Some(Json::Obj(pairs)) = j.get("fields") {
            for (k, v) in pairs {
                let value = Value::from_json(v).ok_or_else(|| bad("non-scalar field"))?;
                ev.fields.push((k.clone(), value));
            }
        }
        Ok(ev)
    }
}

/// Parses a whole JSON-Lines document (blank lines ignored).
pub fn parse_json_lines(text: &str) -> Result<Vec<Event>, JsonError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(Event::from_json_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_round_trips_exactly() {
        let ev = Event::new(12345, kind::SPAN_END, "single_cpu_schedule")
            .field("id", 3u64)
            .field("dur_us", 812u64)
            .field("neg", -4i64)
            .field("ratio", 0.25)
            .field("op", "read");
        let line = ev.to_json_line();
        let back = Event::from_json_line(&line).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn whole_stream_round_trips() {
        let evs = vec![
            Event::new(0, kind::SPAN_BEGIN, "a").field("id", 1u64),
            Event::new(7, kind::DISK_STATE, "idle")
                .field("disk", 2u32)
                .field("at_ms", 10.5),
            Event::new(9, kind::SPAN_END, "a")
                .field("id", 1u64)
                .field("dur_us", 9u64),
        ];
        let text: String = evs.iter().map(|e| e.to_json_line() + "\n").collect();
        let back = parse_json_lines(&text).unwrap();
        assert_eq!(back, evs);
    }

    #[test]
    fn accessors() {
        let ev = Event::new(1, kind::REQUEST, "io_request")
            .field("offset", 4096u64)
            .field("op", "write");
        assert_eq!(ev.num("offset"), Some(4096.0));
        assert_eq!(ev.get("op").and_then(Value::as_str), Some("write"));
        assert_eq!(ev.get("missing"), None);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(-1i64), Value::I64(-1));
        assert_eq!(Value::from(1i64), Value::U64(1));
        assert_eq!(Value::from(2u32), Value::U64(2));
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Event::from_json_line("{}").is_err());
        assert!(Event::from_json_line("{\"ts_us\":1}").is_err());
        assert!(parse_json_lines("{\"ts_us\":1,\"kind\":\"k\",\"name\":\"n\"}\nnot json").is_err());
    }
}
