//! A tiny deterministic PRNG (xorshift64\*), replacing the external `rand`
//! crate for the workspace's few randomness needs (trace arrival jitter,
//! test-input sampling) so the whole tree builds with no registry access.
//!
//! Not cryptographic; statistically fine for jitter and sampling
//! (Marsaglia's xorshift with the Vigna multiplier, period 2^64 − 1).

/// xorshift64\* generator state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Seeds the generator. A zero seed (the one fixed point of the
    /// xorshift step) is remapped to an arbitrary odd constant.
    pub fn new(seed: u64) -> XorShift64Star {
        XorShift64Star {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[0, max)`; returns `0.0` when `max <= 0`.
    pub fn uniform(&mut self, max: f64) -> f64 {
        if max <= 0.0 {
            0.0
        } else {
            self.next_f64() * max
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        // Multiply-shift mapping; bias is < 2^-53 of the span, irrelevant
        // for test sampling.
        lo + (self.next_u64() % span) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        let mut c = XorShift64Star::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn floats_stay_in_range() {
        let mut r = XorShift64Star::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
            let u = r.uniform(2.5);
            assert!((0.0..2.5).contains(&u), "{u}");
        }
        assert_eq!(r.uniform(0.0), 0.0);
        assert_eq!(r.uniform(-1.0), 0.0);
    }

    #[test]
    fn int_range_is_inclusive_and_covers() {
        let mut r = XorShift64Star::new(99);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
    }

    #[test]
    fn rough_uniformity() {
        let mut r = XorShift64Star::new(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
