//! Event sinks: where the instrumentation stream goes.
//!
//! Two built-ins cover the common cases — [`MemorySink`] for programmatic
//! inspection (tests, report builders) and [`JsonLinesSink`] for
//! machine-readable files that outlive the process. Both are installed
//! into the global registry with [`crate::install_sink`]; any number of
//! sinks can be active at once.

use crate::event::{parse_json_lines, Event};
use crate::json::JsonError;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A destination for events. Implementations must be cheap per call: the
/// registry holds its lock while recording.
pub trait EventSink: Send {
    /// Receives one event.
    fn record(&mut self, event: &Event);
    /// Flushes any buffering (called by [`crate::flush`]).
    fn flush_sink(&mut self) {}
}

/// An in-memory collector. The sink half goes into the registry; the
/// [`Collector`] handle (a clone of the shared buffer) stays with the
/// caller for snapshots.
#[derive(Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

/// Read half of a [`MemorySink`].
#[derive(Clone, Default)]
pub struct Collector {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// Creates a sink plus its reader handle.
    pub fn new() -> (MemorySink, Collector) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                events: Arc::clone(&events),
            },
            Collector { events },
        )
    }
}

impl EventSink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events
            .lock()
            .expect("collector poisoned")
            .push(event.clone());
    }
}

impl Collector {
    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("collector poisoned").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("collector poisoned").len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("collector poisoned").clear();
    }
}

/// Writes one JSON line per event (see [`Event::to_json_line`] for the
/// schema).
///
/// **Line-atomic under parallel execution**: each event is serialized to a
/// complete line *before* the writer lock is taken, and the whole line goes
/// to the writer in a single `write_all` under that lock. Clones share the
/// writer, so the sink can be handed to concurrent producers (one clone per
/// `dpm_exec` worker) and the output can interleave only at line
/// granularity — never mid-line.
///
/// Buffered; call [`JsonLinesSink::flush`] (or [`crate::flush`], or drop
/// the registry sink via [`crate::clear_sinks`]) before reading the file.
pub struct JsonLinesSink<W: Write + Send> {
    state: Arc<Mutex<SinkState<W>>>,
}

struct SinkState<W> {
    out: W,
    errored: bool,
}

impl<W: Write + Send> Clone for JsonLinesSink<W> {
    fn clone(&self) -> Self {
        JsonLinesSink {
            state: Arc::clone(&self.state),
        }
    }
}

impl JsonLinesSink<BufWriter<std::fs::File>> {
    /// Creates (truncates) a JSON-Lines file sink.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonLinesSink::new(BufWriter::new(file)))
    }
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            state: Arc::new(Mutex::new(SinkState {
                out,
                errored: false,
            })),
        }
    }

    /// Records one event (shared-reference form, so cloned handles on
    /// worker threads can emit without exclusive access).
    pub fn record_shared(&self, event: &Event) {
        // Serialize outside the lock: by the time any byte reaches the
        // writer the line is complete, so concurrent producers can only
        // interleave whole lines.
        let mut line = event.to_json_line();
        line.push('\n');
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.errored {
            return;
        }
        if st.out.write_all(line.as_bytes()).is_err() {
            // Instrumentation must never take the workload down; note the
            // failure once and go quiet.
            st.errored = true;
            eprintln!("dpm-obs: event sink write failed; disabling sink");
        }
    }

    /// Explicitly flushes buffered lines to the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.errored {
            return Ok(());
        }
        let result = st.out.flush();
        if result.is_err() {
            st.errored = true;
        }
        result
    }
}

impl<W: Write + Send> EventSink for JsonLinesSink<W> {
    fn record(&mut self, event: &Event) {
        self.record_shared(event);
    }

    fn flush_sink(&mut self) {
        let _ = self.flush();
    }
}

impl<W: Write + Send> Drop for JsonLinesSink<W> {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Reads a JSON-Lines event file back into events.
pub fn read_json_lines(path: impl AsRef<Path>) -> io::Result<Result<Vec<Event>, JsonError>> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_json_lines(&text))
}

/// Sums the `dur_us` of every `span_end` event per span name — the
/// per-pass timing table of a run. Names appear in first-seen order.
pub fn span_durations(events: &[Event]) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    for ev in events {
        if ev.kind != crate::event::kind::SPAN_END {
            continue;
        }
        let dur = ev.num("dur_us").unwrap_or(0.0) as u64;
        match out.iter_mut().find(|(name, _)| *name == ev.name) {
            Some((_, total)) => *total += dur,
            None => out.push((ev.name.clone(), dur)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::kind;

    #[test]
    fn memory_sink_collects() {
        let (mut sink, collector) = MemorySink::new();
        assert!(collector.is_empty());
        sink.record(&Event::new(1, kind::COUNTER, "c").field("value", 2u64));
        sink.record(&Event::new(2, kind::COUNTER, "c").field("value", 3u64));
        assert_eq!(collector.len(), 2);
        assert_eq!(collector.snapshot()[1].ts_us, 2);
        collector.clear();
        assert!(collector.is_empty());
    }

    #[test]
    fn jsonl_sink_round_trips_through_a_writer() {
        let events = vec![
            Event::new(1, kind::SPAN_BEGIN, "s").field("id", 1u64),
            Event::new(5, kind::SPAN_END, "s")
                .field("id", 1u64)
                .field("dur_us", 4u64)
                .field("note", "done"),
        ];
        let mut buf = Vec::new();
        {
            let mut sink = JsonLinesSink::new(&mut buf);
            for e in &events {
                sink.record(e);
            }
            sink.flush_sink();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(parse_json_lines(&text).unwrap(), events);
    }

    /// A deliberately hostile writer: one byte per `write` call, so any
    /// tearing window in the sink shows up as interleaved fragments.
    struct ByteAtATime(Arc<Mutex<Vec<u8>>>);

    impl Write for ByteAtATime {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let take = buf.len().min(1);
            self.0.lock().unwrap().extend_from_slice(&buf[..take]);
            Ok(take)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_is_line_atomic_under_concurrent_producers() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonLinesSink::new(ByteAtATime(Arc::clone(&buf)));
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 100;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let sink = sink.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        sink.record_shared(
                            &Event::new(i, kind::COUNTER, "tick")
                                .field("thread", t)
                                .field("seq", i),
                        );
                    }
                });
            }
        });
        sink.flush().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let events = parse_json_lines(&text).expect("no torn lines");
        assert_eq!(events.len(), (THREADS * PER_THREAD) as usize);
        // Every (thread, seq) pair arrived exactly once, in per-thread order.
        for t in 0..THREADS {
            let seqs: Vec<u64> = events
                .iter()
                .filter(|e| e.num("thread") == Some(t as f64))
                .map(|e| e.num("seq").unwrap() as u64)
                .collect();
            assert_eq!(seqs, (0..PER_THREAD).collect::<Vec<_>>());
        }
    }

    #[test]
    fn span_durations_aggregate_per_name() {
        let events = vec![
            Event::new(0, kind::SPAN_END, "a").field("dur_us", 10u64),
            Event::new(1, kind::SPAN_END, "b").field("dur_us", 5u64),
            Event::new(2, kind::SPAN_END, "a").field("dur_us", 7u64),
            Event::new(3, kind::SPAN_BEGIN, "a").field("id", 9u64),
        ];
        assert_eq!(
            span_durations(&events),
            vec![("a".to_string(), 17), ("b".to_string(), 5)]
        );
    }
}
