//! Metric primitives: counters, gauges, and a bucketed histogram with
//! caller-chosen edges.
//!
//! These are plain values, not global registries: passes and simulators
//! accumulate locally (no locking on hot paths) and publish totals either
//! as span counters or with [`Counter::emit`] / [`Gauge::emit`] /
//! [`Histogram::emit`], which send one event through the global registry.

use crate::event::kind;

/// A monotonic counter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds to the counter.
    pub fn add(&mut self, delta: u64) {
        self.value += delta;
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Publishes the current value as a `counter` event named `name`.
    pub fn emit(&self, name: &str) {
        crate::emit(kind::COUNTER, name, &[("value", self.value.into())]);
    }
}

/// A last-value-wins gauge.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&mut self, value: f64) {
        self.value = value;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Publishes the current value as a `gauge` event named `name`.
    pub fn emit(&self, name: &str) {
        crate::emit(kind::GAUGE, name, &[("value", self.value.into())]);
    }
}

/// A histogram over `edges.len() + 1` buckets: value `v` lands in the
/// first bucket whose upper edge exceeds it; the last bucket is unbounded.
/// This generalizes the simulator's fixed idle-period histogram to
/// arbitrary (strictly increasing) edges.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with the given upper bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: Vec<f64>) -> Histogram {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let counts = vec![0; edges.len() + 1];
        Histogram { edges, counts }
    }

    /// The paper's idle-period buckets (ms): `<10`, `10–100`, `0.1–1 s`,
    /// `1–15.2 s` (below the TPM break-even), `15.2–60 s`, `>60 s`.
    pub fn idle_period_ms() -> Histogram {
        Histogram::new(vec![10.0, 100.0, 1_000.0, 15_200.0, 60_000.0])
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        let ix = self
            .edges
            .iter()
            .position(|&e| v < e)
            .unwrap_or(self.edges.len());
        self.counts[ix] += 1;
    }

    /// Bucket upper edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Count per bucket (`edges.len() + 1` entries).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Human-readable label of bucket `ix`.
    pub fn label(&self, ix: usize) -> String {
        if ix == 0 {
            format!("<{}", self.edges[0])
        } else if ix < self.edges.len() {
            format!("{}-{}", self.edges[ix - 1], self.edges[ix])
        } else {
            format!(">={}", self.edges[self.edges.len() - 1])
        }
    }

    /// Merges another histogram with identical edges.
    ///
    /// # Panics
    ///
    /// Panics if the edges differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "histogram edges differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Publishes per-bucket counts as one `counter` event named `name`,
    /// with a `bucketN` field per bucket.
    pub fn emit(&self, name: &str) {
        let fields: Vec<(String, crate::Value)> = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (format!("bucket{i}"), c.into()))
            .collect();
        let borrowed: Vec<(&str, crate::Value)> = fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        crate::emit(kind::COUNTER, name, &borrowed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_values() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        for v in [0.0, 0.999, 1.0, 5.0, 10.0, 1e9] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.label(0), "<1");
        assert_eq!(h.label(1), "1-10");
        assert_eq!(h.label(2), ">=10");
    }

    /// The exact boundary semantics the simulator's idle histogram relies
    /// on: a value equal to an edge belongs to the bucket *above* it.
    #[test]
    fn idle_edges_match_the_paper_buckets() {
        let mut h = Histogram::idle_period_ms();
        h.record(10.0);
        h.record(100.0);
        h.record(1_000.0);
        h.record(15_200.0);
        h.record(60_000.0);
        assert_eq!(h.counts(), &[0, 1, 1, 1, 1, 1]);
        // Just below each edge lands one bucket lower.
        let mut low = Histogram::idle_period_ms();
        for v in [9.999, 99.999, 999.999, 15_199.999, 59_999.999] {
            low.record(v);
        }
        assert_eq!(low.counts(), &[1, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn merge_requires_same_edges() {
        let mut a = Histogram::new(vec![1.0]);
        let mut b = Histogram::new(vec![1.0]);
        a.record(0.5);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_edges_panic() {
        let _ = Histogram::new(vec![1.0, 1.0]);
    }
}
