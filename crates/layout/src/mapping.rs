//! Relaxed array↔file mappings.
//!
//! §2 of the paper assumes one array per file and notes: "While we can
//! relax this assumption by allowing one-to-many and many-to-one mappings
//! between the files and the data arrays, we do not evaluate these options
//! in this paper." This module provides both relaxations:
//!
//! * **many-to-one** ([`FileMapping::shared`]): several arrays packed
//!   back-to-back into one file, so the later arrays do *not* restart at
//!   the starting iodevice — their striping phase is shifted by the
//!   preceding arrays' sizes;
//! * **one-to-many** ([`FileMapping::split_rows`]): one array split
//!   row-wise over several files, each starting on a fresh stripe row.

use dpm_ir::{ArrayId, Program};

/// How the program's arrays map onto files.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileMapping {
    /// One entry per file, in volume order: the arrays stored in that
    /// file, and for each, the inclusive range of *rows* (outermost-
    /// dimension indices) it contributes.
    files: Vec<Vec<ArraySlice>>,
}

/// A contiguous row-range of one array, stored in one file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArraySlice {
    /// The array.
    pub array: ArrayId,
    /// First outermost-dimension index (inclusive).
    pub row_lo: u64,
    /// Last outermost-dimension index (inclusive).
    pub row_hi: u64,
}

impl FileMapping {
    /// The paper's default: one array per file, whole.
    pub fn one_to_one(program: &Program) -> Self {
        FileMapping {
            files: (0..program.arrays.len())
                .map(|a| {
                    vec![ArraySlice {
                        array: a,
                        row_lo: 0,
                        row_hi: program.arrays[a].dims[0] - 1,
                    }]
                })
                .collect(),
        }
    }

    /// Many-to-one: each group of arrays shares a file (whole arrays,
    /// packed in the order given). Every array must appear exactly once
    /// over all groups.
    ///
    /// # Panics
    ///
    /// Panics if an array is missing or duplicated.
    pub fn shared(program: &Program, groups: &[Vec<ArrayId>]) -> Self {
        let mut seen = vec![false; program.arrays.len()];
        let files = groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|&a| {
                        assert!(!seen[a], "array {a} appears twice in the mapping");
                        seen[a] = true;
                        ArraySlice {
                            array: a,
                            row_lo: 0,
                            row_hi: program.arrays[a].dims[0] - 1,
                        }
                    })
                    .collect()
            })
            .collect();
        assert!(
            seen.iter().all(|&s| s),
            "every array must appear in exactly one group"
        );
        FileMapping { files }
    }

    /// One-to-many: array `target` is split row-wise into `pieces` files of
    /// (nearly) equal row counts; every other array keeps its own file.
    ///
    /// # Panics
    ///
    /// Panics if `pieces == 0` or exceeds the array's row count.
    pub fn split_rows(program: &Program, target: ArrayId, pieces: u64) -> Self {
        let rows = program.arrays[target].dims[0];
        assert!(pieces > 0 && pieces <= rows, "bad piece count {pieces}");
        let mut files = Vec::new();
        for a in 0..program.arrays.len() {
            if a == target {
                for k in 0..pieces {
                    let lo = rows * k / pieces;
                    let hi = rows * (k + 1) / pieces - 1;
                    files.push(vec![ArraySlice {
                        array: a,
                        row_lo: lo,
                        row_hi: hi,
                    }]);
                }
            } else {
                files.push(vec![ArraySlice {
                    array: a,
                    row_lo: 0,
                    row_hi: program.arrays[a].dims[0] - 1,
                }]);
            }
        }
        FileMapping { files }
    }

    /// The files, in volume order.
    pub fn files(&self) -> &[Vec<ArraySlice>] {
        &self.files
    }

    /// Bytes a slice occupies.
    pub fn slice_bytes(&self, program: &Program, s: &ArraySlice) -> u64 {
        let decl = &program.arrays[s.array];
        let row_bytes: u64 = decl.dims[1..].iter().product::<u64>() * u64::from(decl.elem_bytes);
        (s.row_hi - s.row_lo + 1) * row_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_ir::parse_program;

    fn prog() -> Program {
        parse_program(
            "program t; array A[8][4] : f64; array B[6][4] : f64;
             nest L { for i = 0 .. 0 { A[0][0] = B[0][0]; } }",
        )
        .unwrap()
    }

    #[test]
    fn one_to_one_covers_all_rows() {
        let p = prog();
        let m = FileMapping::one_to_one(&p);
        assert_eq!(m.files().len(), 2);
        assert_eq!(m.files()[0][0].row_hi, 7);
        assert_eq!(m.files()[1][0].row_hi, 5);
    }

    #[test]
    fn shared_packs_arrays_in_one_file() {
        let p = prog();
        let m = FileMapping::shared(&p, &[vec![0, 1]]);
        assert_eq!(m.files().len(), 1);
        assert_eq!(m.files()[0].len(), 2);
        let bytes: u64 = m.files()[0].iter().map(|s| m.slice_bytes(&p, s)).sum();
        assert_eq!(bytes, (8 * 4 + 6 * 4) * 8);
    }

    #[test]
    #[should_panic]
    fn shared_rejects_missing_array() {
        let p = prog();
        let _ = FileMapping::shared(&p, &[vec![0]]);
    }

    #[test]
    fn split_rows_partitions_evenly() {
        let p = prog();
        let m = FileMapping::split_rows(&p, 0, 3);
        // A in 3 files + B in 1.
        assert_eq!(m.files().len(), 4);
        let a_rows: u64 = m
            .files()
            .iter()
            .flatten()
            .filter(|s| s.array == 0)
            .map(|s| s.row_hi - s.row_lo + 1)
            .sum();
        assert_eq!(a_rows, 8);
    }
}
