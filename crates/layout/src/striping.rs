//! I/O-node-level striping: the disk layout that the paper exposes to the
//! compiler (§2).
//!
//! A file's bytes are cut into *stripe units* (Table 1 default: 32 KB) and
//! dealt round-robin across the I/O nodes, beginning at a configurable
//! *starting iodevice*. The compiler reasons at this level; any RAID-level
//! striping below an I/O node is invisible to it (and is modeled only inside
//! the simulator).

use std::fmt;

/// Identifies an I/O node ("disk" in the paper's terminology, §2).
pub type DiskId = usize;

/// Round-robin striping parameters (the `pvfs_filestat`-visible layout).
///
/// # Examples
///
/// ```
/// use dpm_layout::Striping;
/// let s = Striping::paper_default(); // 32 KB unit, 8 disks, start disk 0
/// assert_eq!(s.disk_of_stripe(0), 0);
/// assert_eq!(s.disk_of_stripe(9), 1);
/// assert_eq!(s.disk_of_offset(32 * 1024), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Striping {
    stripe_unit: u64,
    num_disks: usize,
    start_disk: DiskId,
}

impl Striping {
    /// Creates a striping description.
    ///
    /// # Panics
    ///
    /// Panics if `stripe_unit == 0`, `num_disks == 0`, or
    /// `start_disk >= num_disks`.
    pub fn new(stripe_unit: u64, num_disks: usize, start_disk: DiskId) -> Self {
        assert!(stripe_unit > 0, "stripe unit must be positive");
        assert!(num_disks > 0, "need at least one disk");
        assert!(start_disk < num_disks, "start disk out of range");
        Striping {
            stripe_unit,
            num_disks,
            start_disk,
        }
    }

    /// The paper's Table 1 defaults: 32 KB stripe unit, 8 disks, striping
    /// starting at the first disk.
    pub fn paper_default() -> Self {
        Striping::new(32 * 1024, 8, 0)
    }

    /// Stripe unit in bytes.
    pub fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    /// Stripe factor (number of I/O nodes used for striping).
    pub fn num_disks(&self) -> usize {
        self.num_disks
    }

    /// The first disk where striping starts.
    pub fn start_disk(&self) -> DiskId {
        self.start_disk
    }

    /// The disk holding global stripe index `stripe`.
    pub fn disk_of_stripe(&self, stripe: u64) -> DiskId {
        ((stripe + self.start_disk as u64) % self.num_disks as u64) as DiskId
    }

    /// The disk-local block index of global stripe `stripe` (its position
    /// among the stripes stored on the same disk).
    pub fn local_block_of_stripe(&self, stripe: u64) -> u64 {
        (stripe + self.start_disk as u64) / self.num_disks as u64
    }

    /// The global stripe index containing byte `offset`.
    pub fn stripe_of_offset(&self, offset: u64) -> u64 {
        offset / self.stripe_unit
    }

    /// The disk holding byte `offset`.
    pub fn disk_of_offset(&self, offset: u64) -> DiskId {
        self.disk_of_stripe(self.stripe_of_offset(offset))
    }

    /// Full location (disk, disk-local block, stripe) of byte `offset`.
    pub fn locate_offset(&self, offset: u64) -> DiskLocation {
        let stripe = self.stripe_of_offset(offset);
        DiskLocation {
            disk: self.disk_of_stripe(stripe),
            local_block: self.local_block_of_stripe(stripe),
            stripe,
        }
    }

    /// Bytes in one full stripe row (one stripe on every disk).
    pub fn stripe_row_bytes(&self) -> u64 {
        self.stripe_unit * self.num_disks as u64
    }

    /// Rounds `len` up to a whole number of stripe rows, so that a file
    /// occupying the rounded size ends exactly at a row boundary and the
    /// next file starts again at the starting disk.
    pub fn round_to_stripe_row(&self, len: u64) -> u64 {
        let row = self.stripe_row_bytes();
        len.div_ceil(row) * row
    }
}

impl Default for Striping {
    fn default() -> Self {
        Striping::paper_default()
    }
}

impl fmt::Display for Striping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stripe_unit={}B, stripe_factor={}, start_disk={}",
            self.stripe_unit, self.num_disks, self.start_disk
        )
    }
}

impl Striping {
    /// Splits the byte range `[offset, offset + len)` into per-disk
    /// contiguous pieces `(disk, local_byte, len)`. Consecutive stripes on
    /// the same disk are merged into one piece (they are adjacent in the
    /// disk's local address space).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn split_range(&self, offset: u64, len: u64) -> Vec<(DiskId, u64, u64)> {
        let mut out = Vec::new();
        self.split_range_into(offset, len, &mut out);
        out
    }

    /// Allocation-reusing variant of [`split_range`](Self::split_range):
    /// clears `out` and fills it with the same pieces, sorted by
    /// `(disk, local_byte)`. Hot loops (the simulator's request loop, the
    /// trace generator's blocking estimate) keep one scratch `Vec` alive
    /// instead of allocating per request.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn split_range_into(&self, offset: u64, len: u64, out: &mut Vec<(DiskId, u64, u64)>) {
        assert!(len > 0, "range length must be positive");
        out.clear();
        let su = self.stripe_unit;
        let first = self.stripe_of_offset(offset);
        let last = self.stripe_of_offset(offset + len - 1);
        for s in first..=last {
            let stripe_lo = s * su;
            let lo = offset.max(stripe_lo);
            let hi = (offset + len).min(stripe_lo + su);
            let local = self.local_block_of_stripe(s) * su + (lo - stripe_lo);
            out.push((self.disk_of_stripe(s), local, hi - lo));
        }
        // A disk's stripes within the range have strictly increasing local
        // addresses, so after this sort any mergeable (locally adjacent)
        // pieces sit next to each other.
        out.sort_by_key(|&(d, b, _)| (d, b));
        let mut w = 0;
        for r in 1..out.len() {
            let (rd, rb, rl) = out[r];
            let (wd, wb, wl) = out[w];
            if wd == rd && wb + wl == rb {
                out[w].2 += rl;
            } else {
                w += 1;
                out[w] = (rd, rb, rl);
            }
        }
        out.truncate(w + 1);
    }
}

/// Where a byte lives: the owning disk, the disk-local block index, and the
/// global stripe index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DiskLocation {
    /// Owning I/O node.
    pub disk: DiskId,
    /// Index of the stripe among those stored on `disk` (sequential
    /// on-platter ordering).
    pub local_block: u64,
    /// Global stripe index within the volume.
    pub stripe: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_assignment() {
        let s = Striping::new(1024, 4, 0);
        let disks: Vec<DiskId> = (0..8).map(|i| s.disk_of_stripe(i)).collect();
        assert_eq!(disks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn start_disk_shifts_assignment() {
        let s = Striping::new(1024, 4, 2);
        let disks: Vec<DiskId> = (0..6).map(|i| s.disk_of_stripe(i)).collect();
        assert_eq!(disks, vec![2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn local_blocks_are_sequential_per_disk() {
        let s = Striping::new(1024, 4, 0);
        // Stripes 2, 6, 10 live on disk 2 at local blocks 0, 1, 2.
        for (k, stripe) in [2u64, 6, 10].iter().enumerate() {
            assert_eq!(s.disk_of_stripe(*stripe), 2);
            assert_eq!(s.local_block_of_stripe(*stripe), k as u64);
        }
    }

    #[test]
    fn offset_location() {
        let s = Striping::new(32 * 1024, 8, 0);
        let loc = s.locate_offset(32 * 1024 * 9 + 5);
        assert_eq!(loc.stripe, 9);
        assert_eq!(loc.disk, 1);
        assert_eq!(loc.local_block, 1);
    }

    #[test]
    fn stripe_row_rounding() {
        let s = Striping::new(1024, 4, 0);
        assert_eq!(s.stripe_row_bytes(), 4096);
        assert_eq!(s.round_to_stripe_row(1), 4096);
        assert_eq!(s.round_to_stripe_row(4096), 4096);
        assert_eq!(s.round_to_stripe_row(4097), 8192);
    }

    #[test]
    fn split_range_pieces_cover_length() {
        let s = Striping::new(1024, 4, 0);
        for (off, len) in [(0u64, 10_000u64), (777, 5_000), (1023, 2), (4096, 1)] {
            let total: u64 = s.split_range(off, len).iter().map(|&(_, _, l)| l).sum();
            assert_eq!(total, len, "off={off} len={len}");
        }
        // Two full rows merge per disk.
        let pieces = s.split_range(0, 8 * 1024);
        assert_eq!(pieces.len(), 4);
        assert!(pieces.iter().all(|&(_, b, l)| b == 0 && l == 2048));
    }

    #[test]
    #[should_panic]
    fn rejects_zero_disks() {
        let _ = Striping::new(1024, 0, 0);
    }
}
