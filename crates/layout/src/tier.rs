//! Tiered (heterogeneous) volume layouts: tiers of disks, placement plans
//! assigning array byte ranges to tiers, and the tiered address mapper.
//!
//! The flat world exposes one round-robin [`Striping`](crate::Striping)
//! across a homogeneous array. A *tiered* volume partitions the disks into
//! contiguous groups ("tiers"), each backed by one disk class (the class
//! parameters themselves live in the simulator crate; this layer only needs
//! disk counts and capacities). A [`PlacementPlan`] says which byte ranges
//! of which arrays live on which tier; a [`TieredVolume`] turns the plan
//! into an address mapper with exactly the flat splitter's contract:
//! `split_range_into` cuts a volume byte range into per-disk
//! `(disk, local_byte, len)` pieces, sorted and merged identically.
//!
//! Layout discipline mirrors the flat one: within a tier, placement entries
//! pack back-to-back in units of whole *tier stripe rows* (one stripe on
//! every disk of the tier), so every entry starts at the tier's first disk
//! and round-robins from there. A single-tier topology whose plan places
//! the arrays whole, in file order, therefore reproduces the flat
//! [`Striping`](crate::Striping) addresses bit for bit — the regression
//! anchor the simulator tests rely on.

use crate::map::LayoutMap;
use crate::striping::DiskId;
use std::fmt;

/// One tier of the topology: a contiguous run of identical disks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierRange {
    /// Number of disks in this tier.
    pub disks: usize,
    /// Usable capacity of *each* disk, in bytes.
    pub capacity_bytes: u64,
}

/// The disk-count/capacity skeleton of a heterogeneous array: what the
/// placement machinery needs to know about the tiers, without any power or
/// performance parameters (those stay in the simulator's disk classes).
///
/// Tier 0 is by convention the fastest (performance) tier; higher indices
/// are progressively colder. Global disk ids are assigned contiguously in
/// tier order: tier 0 owns disks `0..d0`, tier 1 owns `d0..d0+d1`, and so
/// on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierTopology {
    stripe_unit: u64,
    tiers: Vec<TierRange>,
}

impl TierTopology {
    /// Creates a topology.
    ///
    /// # Panics
    ///
    /// Panics if `stripe_unit == 0`, `tiers` is empty, or any tier has no
    /// disks or zero capacity.
    pub fn new(stripe_unit: u64, tiers: Vec<TierRange>) -> Self {
        assert!(stripe_unit > 0, "stripe unit must be positive");
        assert!(!tiers.is_empty(), "need at least one tier");
        for (t, tier) in tiers.iter().enumerate() {
            assert!(tier.disks > 0, "tier {t} has no disks");
            assert!(tier.capacity_bytes > 0, "tier {t} has zero capacity");
        }
        TierTopology { stripe_unit, tiers }
    }

    /// Stripe unit in bytes (shared by every tier).
    pub fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    /// The tiers, in tier order.
    pub fn tiers(&self) -> &[TierRange] {
        &self.tiers
    }

    /// Number of tiers.
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Total number of disks across all tiers.
    pub fn num_disks(&self) -> usize {
        self.tiers.iter().map(|t| t.disks).sum()
    }

    /// Global id of the first disk of `tier`.
    ///
    /// # Panics
    ///
    /// Panics if `tier` is out of range.
    pub fn first_disk(&self, tier: usize) -> DiskId {
        assert!(tier < self.tiers.len(), "tier {tier} out of range");
        self.tiers[..tier].iter().map(|t| t.disks).sum()
    }

    /// The tier owning global disk `disk`.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    pub fn tier_of_disk(&self, disk: DiskId) -> usize {
        let mut lo = 0;
        for (t, tier) in self.tiers.iter().enumerate() {
            if disk < lo + tier.disks {
                return t;
            }
            lo += tier.disks;
        }
        panic!("disk {disk} out of range ({} disks)", self.num_disks());
    }

    /// Bytes in one stripe row of `tier` (one stripe unit on each of its
    /// disks).
    pub fn row_bytes(&self, tier: usize) -> u64 {
        self.stripe_unit * self.tiers[tier].disks as u64
    }

    /// Total usable capacity of `tier` in bytes (all its disks).
    pub fn tier_capacity_bytes(&self, tier: usize) -> u64 {
        self.tiers[tier].capacity_bytes * self.tiers[tier].disks as u64
    }
}

impl fmt::Display for TierTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stripe_unit={}B", self.stripe_unit)?;
        for (t, tier) in self.tiers.iter().enumerate() {
            write!(f, ", tier{}={}x{}B", t, tier.disks, tier.capacity_bytes)?;
        }
        Ok(())
    }
}

/// One placement decision: bytes `[byte_lo, byte_hi)` of `array`'s file
/// live on `tier`. Offsets are file-relative (0 = the array's first byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacementEntry {
    /// Array (file) index.
    pub array: usize,
    /// First file-relative byte covered.
    pub byte_lo: u64,
    /// One past the last file-relative byte covered.
    pub byte_hi: u64,
    /// Destination tier.
    pub tier: usize,
}

/// Per-array demand fed to the placement builders: how big the array's
/// file is and how hot the compiler statically knows it to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayDemand {
    /// Rounded file size in bytes (`LayoutMap::file_len`).
    pub bytes: u64,
    /// Static access count (closed-form element accesses touching the
    /// array over the whole program).
    pub heat: u64,
}

/// A complete assignment of array byte ranges to tiers.
///
/// Legality (each array covered exactly once, entries stripe-aligned,
/// capacities respected) is *verified* by `dpm-analyze`; the builders here
/// only produce legal plans, and [`TieredVolume::new`] re-asserts the
/// invariants it depends on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlacementPlan {
    /// The placement entries. Public so verification and mutation tests
    /// can inspect and perturb plans directly.
    pub entries: Vec<PlacementEntry>,
}

impl PlacementPlan {
    /// Places every array whole on a single tier, in array order.
    pub fn uniform(tier: usize, sizes: &[u64]) -> Self {
        PlacementPlan {
            entries: sizes
                .iter()
                .enumerate()
                .map(|(array, &bytes)| PlacementEntry {
                    array,
                    byte_lo: 0,
                    byte_hi: bytes,
                    tier,
                })
                .collect(),
        }
    }

    /// The compiler-guided builder: arrays sorted by static heat *density*
    /// (accesses per byte, hottest first) are packed whole onto the
    /// fastest tier with room, falling through to colder tiers.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first array that fits on no tier.
    pub fn greedy(topo: &TierTopology, demands: &[ArrayDemand]) -> Result<Self, String> {
        let mut order: Vec<usize> = (0..demands.len()).collect();
        order.sort_by(|&a, &b| {
            let da = demands[a].heat as f64 / demands[a].bytes.max(1) as f64;
            let db = demands[b].heat as f64 / demands[b].bytes.max(1) as f64;
            // Densities are finite ratios of non-negative integers, so
            // total_cmp is exactly partial_cmp here — minus the panic path.
            db.total_cmp(&da).then(a.cmp(&b))
        });
        Self::pack(topo, demands, &order)
    }

    /// The heat-blind heuristic competitor: arrays in index order dealt
    /// round-robin across tiers, overflowing to the next tier with room.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first array that fits on no tier.
    pub fn round_robin(topo: &TierTopology, demands: &[ArrayDemand]) -> Result<Self, String> {
        let nt = topo.num_tiers();
        let mut rows_used = vec![0u64; nt];
        let mut entries = Vec::with_capacity(demands.len());
        for (array, d) in demands.iter().enumerate() {
            let want = array % nt;
            let tier = (0..nt)
                .map(|k| (want + k) % nt)
                .find(|&t| {
                    let rows = d.bytes.max(1).div_ceil(topo.row_bytes(t));
                    (rows_used[t] + rows) * topo.row_bytes(t) <= topo.tier_capacity_bytes(t)
                })
                .ok_or_else(|| format!("array {array} ({} B) fits on no tier", d.bytes))?;
            rows_used[tier] += d.bytes.max(1).div_ceil(topo.row_bytes(tier));
            entries.push(PlacementEntry {
                array,
                byte_lo: 0,
                byte_hi: d.bytes,
                tier,
            });
        }
        entries.sort_by_key(|e| e.array);
        Ok(PlacementPlan { entries })
    }

    /// Packs arrays whole, visiting them in `order`, always preferring the
    /// fastest tier with remaining capacity.
    fn pack(topo: &TierTopology, demands: &[ArrayDemand], order: &[usize]) -> Result<Self, String> {
        let nt = topo.num_tiers();
        let mut rows_used = vec![0u64; nt];
        let mut entries = Vec::with_capacity(demands.len());
        for &array in order {
            let bytes = demands[array].bytes.max(1);
            let tier = (0..nt)
                .find(|&t| {
                    let rows = bytes.div_ceil(topo.row_bytes(t));
                    (rows_used[t] + rows) * topo.row_bytes(t) <= topo.tier_capacity_bytes(t)
                })
                .ok_or_else(|| format!("array {array} ({bytes} B) fits on no tier"))?;
            rows_used[tier] += bytes.div_ceil(topo.row_bytes(tier));
            entries.push(PlacementEntry {
                array,
                byte_lo: 0,
                byte_hi: demands[array].bytes,
                tier,
            });
        }
        entries.sort_by_key(|e| e.array);
        Ok(PlacementPlan { entries })
    }

    /// The tier assigned to `array`, when the plan places it whole on one
    /// tier (`None` for split or missing arrays).
    pub fn tier_of_array(&self, array: usize) -> Option<usize> {
        let mut found = None;
        for e in self.entries.iter().filter(|e| e.array == array) {
            match found {
                None => found = Some(e.tier),
                Some(t) if t != e.tier => return None,
                _ => {}
            }
        }
        found
    }
}

/// One placed run of volume bytes: `[vol_lo, vol_hi)` lives on `tier`
/// starting at tier-local stripe index `base_ts`.
#[derive(Clone, Copy, Debug)]
struct VolSeg {
    vol_lo: u64,
    vol_hi: u64,
    tier: usize,
    base_ts: u64,
    /// Index into the plan's per-array grouping (which array this segment
    /// belongs to), for migration remapping.
    array: usize,
}

/// The per-disk I/O read from / written to by one migration move.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationMove {
    /// The array moved.
    pub array: usize,
    /// Source tier.
    pub from_tier: usize,
    /// Destination tier.
    pub to_tier: usize,
    /// Logical bytes moved (the array's placed extent).
    pub bytes: u64,
    /// Per-disk read traffic `(disk, len)` on the source tier.
    pub reads: Vec<(DiskId, u64)>,
    /// Per-disk write traffic `(disk, len)` on the destination tier.
    pub writes: Vec<(DiskId, u64)>,
}

/// A placed, addressable tiered volume: maps flat volume byte offsets (the
/// address space the trace generator emits) to `(global disk, local byte)`
/// under a [`PlacementPlan`], and supports whole-array remapping for
/// online migration.
#[derive(Clone, Debug)]
pub struct TieredVolume {
    topo: TierTopology,
    /// Segments sorted by `vol_lo`, covering the volume contiguously.
    segments: Vec<VolSeg>,
    /// Append-only allocation cursor per tier, in stripe rows.
    cursor_rows: Vec<u64>,
    /// Live (currently mapped) bytes per tier, row-rounded — frees on
    /// demotion even though local addresses are never reused.
    live_rows: Vec<u64>,
    /// Number of arrays (files) the plan covers.
    num_arrays: usize,
}

impl TieredVolume {
    /// Builds the volume for `layout` under `plan`.
    ///
    /// Entries are allocated per tier in `(array, byte_lo)` order — the
    /// file order of the flat layout — each starting on a fresh tier
    /// stripe row. With a single tier whose plan places every array whole,
    /// the resulting addresses equal the flat `Striping`'s exactly.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not cover every array's `[0, file_len)`
    /// exactly once with stripe-aligned entries on valid tiers, or if a
    /// tier's capacity is exceeded. (Use `dpm-analyze`'s placement
    /// verifier for diagnosable rejection; the panics here are the last
    /// line of defense.)
    pub fn new(layout: &LayoutMap, topo: TierTopology, plan: &PlacementPlan) -> Self {
        let su = topo.stripe_unit();
        let num_arrays = layout.num_files();
        let mut by_array: Vec<Vec<PlacementEntry>> = vec![Vec::new(); num_arrays];
        for e in &plan.entries {
            assert!(
                e.array < num_arrays,
                "entry names unknown array {}",
                e.array
            );
            assert!(
                e.tier < topo.num_tiers(),
                "entry names unknown tier {}",
                e.tier
            );
            assert!(
                e.byte_lo < e.byte_hi,
                "empty placement entry for array {}",
                e.array
            );
            assert!(
                e.byte_lo % su == 0
                    && (e.byte_hi % su == 0 || e.byte_hi == layout.file_len(e.array)),
                "entry for array {} splits a stripe at {}..{}",
                e.array,
                e.byte_lo,
                e.byte_hi
            );
            by_array[e.array].push(*e);
        }
        let mut cursor_rows = vec![0u64; topo.num_tiers()];
        let mut segments = Vec::new();
        for (array, entries) in by_array.iter_mut().enumerate() {
            entries.sort_by_key(|e| e.byte_lo);
            let len = layout.file_len(array);
            let mut covered = 0u64;
            for e in entries.iter() {
                assert!(
                    e.byte_lo == covered,
                    "array {array}: placement gap or overlap at byte {covered}"
                );
                covered = e.byte_hi;
                let elen = e.byte_hi - e.byte_lo;
                let rows = elen.div_ceil(topo.row_bytes(e.tier));
                let base_ts = cursor_rows[e.tier] * topo.tiers()[e.tier].disks as u64;
                cursor_rows[e.tier] += rows;
                assert!(
                    cursor_rows[e.tier] * topo.row_bytes(e.tier)
                        <= topo.tier_capacity_bytes(e.tier),
                    "tier {} capacity exceeded placing array {array}",
                    e.tier
                );
                segments.push(VolSeg {
                    vol_lo: layout.file_base(array) + e.byte_lo,
                    vol_hi: layout.file_base(array) + e.byte_hi,
                    tier: e.tier,
                    base_ts,
                    array,
                });
            }
            assert!(
                covered == len,
                "array {array}: plan covers {covered} of {len} bytes"
            );
        }
        segments.sort_by_key(|s| s.vol_lo);
        let live_rows = cursor_rows.clone();
        TieredVolume {
            topo,
            segments,
            cursor_rows,
            live_rows,
            num_arrays,
        }
    }

    /// Number of arrays (files) placed on this volume.
    pub fn num_arrays(&self) -> usize {
        self.num_arrays
    }

    /// The topology this volume is placed on.
    pub fn topology(&self) -> &TierTopology {
        &self.topo
    }

    /// Total number of disks.
    pub fn num_disks(&self) -> usize {
        self.topo.num_disks()
    }

    /// The tier currently holding `array` (whole-array granularity;
    /// `None` when the array is split across tiers).
    pub fn tier_of_array(&self, array: usize) -> Option<usize> {
        let mut found = None;
        for s in self.segments.iter().filter(|s| s.array == array) {
            match found {
                None => found = Some(s.tier),
                Some(t) if t != s.tier => return None,
                _ => {}
            }
        }
        found
    }

    /// Live (currently mapped) bytes on `tier`, row-rounded.
    pub fn live_bytes(&self, tier: usize) -> u64 {
        self.live_rows[tier] * self.topo.row_bytes(tier)
    }

    /// The array owning volume byte `offset`, or `None` outside the placed
    /// volume. O(log segments); the migration policy uses this to attribute
    /// each request to an array.
    pub fn array_of_offset(&self, offset: u64) -> Option<usize> {
        let ix = self.segments.partition_point(|s| s.vol_hi <= offset);
        let seg = self.segments.get(ix)?;
        (seg.vol_lo <= offset).then_some(seg.array)
    }

    /// Whether `array` (placed whole on one tier) could be remapped to
    /// `to_tier` without exceeding the destination's *live* capacity.
    /// `false` for split arrays or when `to_tier` is the current tier.
    pub fn fits(&self, array: usize, to_tier: usize) -> bool {
        let Some(from_tier) = self.tier_of_array(array) else {
            return false;
        };
        if from_tier == to_tier {
            return false;
        }
        let rows: u64 = self
            .segments
            .iter()
            .filter(|s| s.array == array)
            .map(|s| (s.vol_hi - s.vol_lo).div_ceil(self.topo.row_bytes(to_tier)))
            .sum();
        (self.live_rows[to_tier] + rows) * self.topo.row_bytes(to_tier)
            <= self.topo.tier_capacity_bytes(to_tier)
    }

    /// Splits the volume byte range `[offset, offset + len)` into per-disk
    /// pieces `(global disk, local_byte, len)`, sorted by
    /// `(disk, local_byte)` with locally adjacent pieces merged — the same
    /// contract (and, for flat-equivalent placements, the same output) as
    /// [`Striping::split_range_into`](crate::Striping::split_range_into).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the range extends past the placed volume.
    pub fn split_range_into(&self, offset: u64, len: u64, out: &mut Vec<(DiskId, u64, u64)>) {
        assert!(len > 0, "range length must be positive");
        out.clear();
        let su = self.topo.stripe_unit();
        let end = offset + len;
        let mut ix = self.segments.partition_point(|s| s.vol_hi <= offset);
        let mut cursor = offset;
        while cursor < end {
            let seg = self
                .segments
                .get(ix)
                .unwrap_or_else(|| panic!("offset {cursor} beyond the placed volume"));
            assert!(
                seg.vol_lo <= cursor,
                "offset {cursor} falls in a placement hole before segment at {}",
                seg.vol_lo
            );
            let lo = cursor;
            let hi = end.min(seg.vol_hi);
            let n = self.topo.tiers()[seg.tier].disks as u64;
            let disk_lo = self.topo.first_disk(seg.tier) as u64;
            let within_lo = lo - seg.vol_lo;
            let within_hi = hi - seg.vol_lo;
            let first = within_lo / su;
            let last = (within_hi - 1) / su;
            for s in first..=last {
                let stripe_lo = s * su;
                let plo = within_lo.max(stripe_lo);
                let phi = within_hi.min(stripe_lo + su);
                let ts = seg.base_ts + s;
                let disk = (disk_lo + ts % n) as DiskId;
                let local = (ts / n) * su + (plo - stripe_lo);
                out.push((disk, local, phi - plo));
            }
            cursor = hi;
            ix += 1;
        }
        out.sort_by_key(|&(d, b, _)| (d, b));
        let mut w = 0;
        for r in 1..out.len() {
            let (rd, rb, rl) = out[r];
            let (wd, wb, wl) = out[w];
            if wd == rd && wb + wl == rb {
                out[w].2 += rl;
            } else {
                w += 1;
                out[w] = (rd, rb, rl);
            }
        }
        out.truncate(w + 1);
    }

    /// Remaps `array` (placed whole on one tier) to `to_tier`, appending
    /// it at the destination's allocation cursor, and returns the per-disk
    /// migration traffic. Local addresses are append-only; the vacated
    /// rows are released from the source tier's live accounting.
    ///
    /// # Panics
    ///
    /// Panics if the array is split across tiers, already on `to_tier`,
    /// or the destination lacks live capacity.
    pub fn remap_array(&mut self, array: usize, to_tier: usize) -> MigrationMove {
        let from_tier = self
            .tier_of_array(array)
            .unwrap_or_else(|| panic!("array {array} is split across tiers"));
        assert_ne!(
            from_tier, to_tier,
            "array {array} already on tier {to_tier}"
        );
        let su = self.topo.stripe_unit();
        // Gather per-disk shares of the current placement (reads).
        let mut reads: Vec<(DiskId, u64)> = Vec::new();
        let mut writes: Vec<(DiskId, u64)> = Vec::new();
        let mut bytes = 0u64;
        let mut freed_rows = 0u64;
        let mut new_rows = 0u64;
        for seg in self.segments.iter_mut().filter(|s| s.array == array) {
            let elen = seg.vol_hi - seg.vol_lo;
            bytes += elen;
            Self::shares(&self.topo, seg.tier, elen, su, &mut reads);
            freed_rows += elen.div_ceil(self.topo.row_bytes(seg.tier));
            let rows = elen.div_ceil(self.topo.row_bytes(to_tier));
            let base_ts = self.cursor_rows[to_tier] * self.topo.tiers()[to_tier].disks as u64;
            self.cursor_rows[to_tier] += rows;
            new_rows += rows;
            seg.tier = to_tier;
            seg.base_ts = base_ts;
            Self::shares(&self.topo, to_tier, elen, su, &mut writes);
        }
        assert!(bytes > 0, "array {array} has no placed bytes");
        self.live_rows[from_tier] -= freed_rows;
        self.live_rows[to_tier] += new_rows;
        assert!(
            self.live_bytes(to_tier) <= self.topo.tier_capacity_bytes(to_tier),
            "tier {to_tier} live capacity exceeded migrating array {array}"
        );
        Self::merge_shares(&mut reads);
        Self::merge_shares(&mut writes);
        MigrationMove {
            array,
            from_tier,
            to_tier,
            bytes,
            reads,
            writes,
        }
    }

    /// Per-disk byte shares of a `len`-byte extent striped over `tier`:
    /// stripe `s` goes to the tier's disk `s % n`, the last stripe
    /// partial.
    fn shares(topo: &TierTopology, tier: usize, len: u64, su: u64, out: &mut Vec<(DiskId, u64)>) {
        let n = topo.tiers()[tier].disks as u64;
        let disk_lo = topo.first_disk(tier) as u64;
        let stripes = len.div_ceil(su);
        let tail = len - (stripes - 1) * su;
        for k in 0..n.min(stripes) {
            let full = stripes / n + u64::from(k < stripes % n);
            let mut share = full * su;
            if (stripes - 1) % n == k {
                share = share - su + tail;
            }
            if share > 0 {
                out.push(((disk_lo + k) as DiskId, share));
            }
        }
    }

    /// Sums duplicate disk entries (an array remapped in several segments).
    fn merge_shares(shares: &mut Vec<(DiskId, u64)>) {
        shares.sort_by_key(|&(d, _)| d);
        let mut w = 0;
        for r in 1..shares.len() {
            if shares[r].0 == shares[w].0 {
                shares[w].1 += shares[r].1;
            } else {
                w += 1;
                shares[w] = shares[r];
            }
        }
        shares.truncate((w + 1).min(shares.len()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::striping::Striping;
    use dpm_ir::parse_program;

    fn layout(striping: Striping) -> (dpm_ir::Program, LayoutMap) {
        let p = parse_program(
            "program t;
             array A[64][64] : f64;
             array B[32][64] : f64;
             array C[16][64] : f64;
             nest L { for i = 0 .. 0 { A[0][0] = B[0][0] + C[0][0]; } }",
        )
        .unwrap();
        let m = LayoutMap::new(&p, striping);
        (p, m)
    }

    fn demands(layout: &LayoutMap, heats: &[u64]) -> Vec<ArrayDemand> {
        heats
            .iter()
            .enumerate()
            .map(|(a, &heat)| ArrayDemand {
                bytes: layout.file_len(a),
                heat,
            })
            .collect()
    }

    /// A single-tier volume with whole-array placement reproduces the flat
    /// striping addresses exactly — pieces, order, and merging.
    #[test]
    fn single_tier_matches_flat_striping() {
        let striping = Striping::new(1024, 4, 0);
        let (_, m) = layout(striping);
        let topo = TierTopology::new(
            1024,
            vec![TierRange {
                disks: 4,
                capacity_bytes: 1 << 30,
            }],
        );
        let sizes: Vec<u64> = (0..3).map(|a| m.file_len(a)).collect();
        let plan = PlacementPlan::uniform(0, &sizes);
        let vol = TieredVolume::new(&m, topo, &plan);
        let mut flat = Vec::new();
        let mut tiered = Vec::new();
        for (off, len) in [
            (0u64, 1u64),
            (0, 10_000),
            (777, 5_000),
            (1023, 2),
            (4096, 1),
            (32 * 1024, 16 * 1024),
            (m.volume_bytes() - 4096, 4096),
        ] {
            striping.split_range_into(off, len, &mut flat);
            vol.split_range_into(off, len, &mut tiered);
            assert_eq!(flat, tiered, "off={off} len={len}");
        }
    }

    #[test]
    fn two_tier_split_covers_range_within_tier_disks() {
        let striping = Striping::new(1024, 6, 0);
        let (_, m) = layout(striping);
        let topo = TierTopology::new(
            1024,
            vec![
                TierRange {
                    disks: 2,
                    capacity_bytes: 1 << 30,
                },
                TierRange {
                    disks: 4,
                    capacity_bytes: 1 << 30,
                },
            ],
        );
        // A hot on tier 0, B and C cold on tier 1.
        let plan = PlacementPlan {
            entries: vec![
                PlacementEntry {
                    array: 0,
                    byte_lo: 0,
                    byte_hi: m.file_len(0),
                    tier: 0,
                },
                PlacementEntry {
                    array: 1,
                    byte_lo: 0,
                    byte_hi: m.file_len(1),
                    tier: 1,
                },
                PlacementEntry {
                    array: 2,
                    byte_lo: 0,
                    byte_hi: m.file_len(2),
                    tier: 1,
                },
            ],
        };
        let vol = TieredVolume::new(&m, topo, &plan);
        let mut out = Vec::new();
        // A range spanning the A/B file boundary touches both tiers.
        let a_len = m.file_len(0);
        vol.split_range_into(a_len - 2048, 4096, &mut out);
        let total: u64 = out.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total, 4096);
        assert!(out.iter().any(|&(d, _, _)| d < 2), "no tier-0 piece");
        assert!(out.iter().any(|&(d, _, _)| d >= 2), "no tier-1 piece");
        // Every piece's disk belongs to the tier that owns its bytes.
        for &(d, _, _) in &out {
            assert!(d < 6);
        }
        assert_eq!(vol.tier_of_array(0), Some(0));
        assert_eq!(vol.tier_of_array(1), Some(1));
    }

    #[test]
    fn remap_moves_exact_share_totals() {
        let striping = Striping::new(1024, 6, 0);
        let (_, m) = layout(striping);
        let topo = TierTopology::new(
            1024,
            vec![
                TierRange {
                    disks: 2,
                    capacity_bytes: 1 << 30,
                },
                TierRange {
                    disks: 4,
                    capacity_bytes: 1 << 30,
                },
            ],
        );
        let sizes: Vec<u64> = (0..3).map(|a| m.file_len(a)).collect();
        let plan = PlacementPlan::uniform(1, &sizes);
        let mut vol = TieredVolume::new(&m, topo, &plan);
        let before_live_1 = vol.live_bytes(1);
        let mv = vol.remap_array(2, 0);
        assert_eq!(mv.from_tier, 1);
        assert_eq!(mv.to_tier, 0);
        assert_eq!(mv.bytes, m.file_len(2));
        let read_total: u64 = mv.reads.iter().map(|&(_, l)| l).sum();
        let write_total: u64 = mv.writes.iter().map(|&(_, l)| l).sum();
        assert_eq!(read_total, mv.bytes);
        assert_eq!(write_total, mv.bytes);
        assert!(mv.reads.iter().all(|&(d, _)| (2..6).contains(&d)));
        assert!(mv.writes.iter().all(|&(d, _)| d < 2));
        assert!(vol.live_bytes(1) < before_live_1);
        assert_eq!(vol.tier_of_array(2), Some(0));
        // The remapped array still splits cleanly and lands on tier 0.
        let mut out = Vec::new();
        vol.split_range_into(m.file_base(2), m.file_len(2), &mut out);
        assert!(out.iter().all(|&(d, _, _)| d < 2));
        let total: u64 = out.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total, m.file_len(2));
    }

    #[test]
    fn greedy_puts_hottest_on_fast_tier_and_respects_capacity() {
        let striping = Striping::new(1024, 6, 0);
        let (_, m) = layout(striping);
        // Tier 0 fits only the smallest array (C = 16*64*8 = 8 KiB, rounded
        // to the 6-disk flat rows -> 12 KiB); give it 16 KiB total.
        let topo = TierTopology::new(
            1024,
            vec![
                TierRange {
                    disks: 2,
                    capacity_bytes: 8 * 1024,
                },
                TierRange {
                    disks: 4,
                    capacity_bytes: 1 << 30,
                },
            ],
        );
        // C is by far the hottest per byte.
        let d = demands(&m, &[10, 10, 1_000_000]);
        let plan = PlacementPlan::greedy(&topo, &d).unwrap();
        assert_eq!(
            plan.tier_of_array(2),
            Some(0),
            "hottest array not on tier 0"
        );
        assert_eq!(plan.tier_of_array(0), Some(1));
        assert_eq!(plan.tier_of_array(1), Some(1));
        // The plan builds a volume without tripping capacity asserts.
        let _ = TieredVolume::new(&m, topo, &plan);
    }

    #[test]
    fn round_robin_distributes_by_index() {
        let striping = Striping::new(1024, 6, 0);
        let (_, m) = layout(striping);
        let topo = TierTopology::new(
            1024,
            vec![
                TierRange {
                    disks: 2,
                    capacity_bytes: 1 << 30,
                },
                TierRange {
                    disks: 4,
                    capacity_bytes: 1 << 30,
                },
            ],
        );
        let d = demands(&m, &[1, 1, 1]);
        let plan = PlacementPlan::round_robin(&topo, &d).unwrap();
        assert_eq!(plan.tier_of_array(0), Some(0));
        assert_eq!(plan.tier_of_array(1), Some(1));
        assert_eq!(plan.tier_of_array(2), Some(0));
    }

    #[test]
    fn greedy_errs_when_nothing_fits() {
        let topo = TierTopology::new(
            1024,
            vec![TierRange {
                disks: 1,
                capacity_bytes: 1024,
            }],
        );
        let d = [ArrayDemand {
            bytes: 1 << 20,
            heat: 1,
        }];
        assert!(PlacementPlan::greedy(&topo, &d).is_err());
    }
}
