//! # dpm-layout — disk-resident array layouts
//!
//! Models the storage organization of §2 of the CGO 2006 paper: arrays map
//! one-to-one onto files; files are striped round-robin across I/O nodes at
//! a software-visible granularity (stripe unit / stripe factor / starting
//! iodevice, Table 1 defaults 32 KB / 8 / first disk). The compiler crates
//! query a [`LayoutMap`] to learn which I/O node holds each array element —
//! the "disk layout exposed to the compiler" that drives the restructuring.
//!
//! ```
//! use dpm_layout::{LayoutMap, Striping};
//! let p = dpm_ir::parse_program(
//!     "program t; array A[1024] : f64; nest L { for i = 0 .. 0 { A[0] = 1; } }",
//! ).unwrap();
//! let map = LayoutMap::new(&p, Striping::new(1024, 4, 0));
//! // 1024-byte stripes of 128 elements each, dealt over 4 disks:
//! assert_eq!(map.disk_of_element(&p, 0, &[0]), 0);
//! assert_eq!(map.disk_of_element(&p, 0, &[128]), 1);
//! assert_eq!(map.disk_of_element(&p, 0, &[512]), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod map;
mod mapping;
mod striping;
mod tier;

pub use map::LayoutMap;
pub use mapping::{ArraySlice, FileMapping};
pub use striping::{DiskId, DiskLocation, Striping};
pub use tier::{
    ArrayDemand, MigrationMove, PlacementEntry, PlacementPlan, TierRange, TierTopology,
    TieredVolume,
};
