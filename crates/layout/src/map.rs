//! Mapping a program's disk-resident arrays onto the striped volume.
//!
//! Each array is stored in its own file (the paper's one-to-one assumption,
//! §2); files are laid out back-to-back in a logical volume, each starting
//! on a stripe-row boundary so striping restarts at the starting disk. The
//! compiler queries this map to learn which I/O node an element lives on.

use crate::mapping::FileMapping;
use crate::striping::{DiskId, DiskLocation, Striping};
use dpm_ir::{ArrayId, Program};
use std::fmt;

/// A contiguous run of one array's linearized elements placed at a volume
/// byte offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Segment {
    /// First linearized element index covered.
    lin_lo: u64,
    /// Last linearized element index covered (inclusive).
    lin_hi: u64,
    /// Volume byte offset of element `lin_lo`.
    base: u64,
}

/// The volume layout for one program: per-array file extents over a shared
/// [`Striping`].
///
/// # Examples
///
/// ```
/// use dpm_layout::{LayoutMap, Striping};
/// let p = dpm_ir::parse_program(
///     "program t; array A[64][64] : f64; nest L { for i = 0 .. 0 { A[0][0] = 1; } }",
/// ).unwrap();
/// let map = LayoutMap::new(&p, Striping::new(4096, 4, 0));
/// // Row 0 (512 B) sits inside stripe 0 on disk 0.
/// assert_eq!(map.disk_of_element(&p, 0, &[0, 0]), 0);
/// // Element (8, 0) starts at byte 8*64*8 = 4096 → stripe 1 → disk 1.
/// assert_eq!(map.disk_of_element(&p, 0, &[8, 0]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct LayoutMap {
    striping: Striping,
    /// Byte offset of each array's *first* segment within the volume.
    file_base: Vec<u64>,
    /// Total bytes attributed to each array (rounded file size for the
    /// default one-to-one mapping; raw slice bytes for relaxed mappings).
    file_len: Vec<u64>,
    /// Per-array placement segments, sorted by `lin_lo`.
    segments: Vec<Vec<Segment>>,
    /// Whether the default one array ↔ one file mapping is in effect.
    one_to_one: bool,
    volume: u64,
}

impl LayoutMap {
    /// Lays out every array of `program` consecutively under `striping`
    /// with the paper's default one-array-per-file mapping (§2).
    pub fn new(program: &Program, striping: Striping) -> Self {
        Self::with_mapping(program, striping, &FileMapping::one_to_one(program))
    }

    /// Lays out the arrays under a relaxed array↔file mapping (§2's
    /// one-to-many / many-to-one options). Files are placed in mapping
    /// order, each starting on a stripe-row boundary; slices within a file
    /// pack back-to-back, so arrays sharing a file have their striping
    /// phase shifted by their predecessors.
    pub fn with_mapping(program: &Program, striping: Striping, mapping: &FileMapping) -> Self {
        let n = program.arrays.len();
        let mut segments: Vec<Vec<Segment>> = vec![Vec::new(); n];
        let mut file_len = vec![0u64; n];
        let mut cursor = 0u64;
        for file in mapping.files() {
            let mut within = 0u64;
            for slice in file {
                let decl = &program.arrays[slice.array];
                let row_elems: u64 = decl.dims[1..].iter().product();
                let bytes = mapping.slice_bytes(program, slice);
                segments[slice.array].push(Segment {
                    lin_lo: slice.row_lo * row_elems,
                    lin_hi: (slice.row_hi + 1) * row_elems - 1,
                    base: cursor + within,
                });
                file_len[slice.array] += bytes;
                within += bytes;
            }
            cursor += striping.round_to_stripe_row(within.max(1));
        }
        let one_to_one = segments
            .iter()
            .all(|segs| segs.len() == 1 && segs[0].lin_lo == 0)
            && mapping.files().iter().all(|f| f.len() == 1);
        if one_to_one {
            // Preserve the historical meaning: rounded file sizes.
            for (len, decl) in file_len.iter_mut().zip(&program.arrays) {
                *len = striping.round_to_stripe_row(decl.size_bytes());
            }
        }
        let mut segs_sorted = segments;
        for s in &mut segs_sorted {
            s.sort_by_key(|seg| seg.lin_lo);
        }
        LayoutMap {
            striping,
            file_base: segs_sorted
                .iter()
                .map(|s| s.first().map_or(0, |seg| seg.base))
                .collect(),
            file_len,
            segments: segs_sorted,
            one_to_one,
            volume: cursor,
        }
    }

    /// Whether the default one-array-per-file mapping is in effect (the
    /// symbolic restructurer requires it).
    pub fn is_one_to_one(&self) -> bool {
        self.one_to_one
    }

    /// The shared striping parameters.
    pub fn striping(&self) -> &Striping {
        &self.striping
    }

    /// Volume byte offset of the start of `array`'s (first) file segment.
    ///
    /// # Panics
    ///
    /// Panics if `array` is out of range.
    pub fn file_base(&self, array: ArrayId) -> u64 {
        self.file_base[array]
    }

    /// Bytes attributed to `array`: the rounded file size under the
    /// one-to-one mapping, the raw slice total under relaxed mappings.
    ///
    /// # Panics
    ///
    /// Panics if `array` is out of range.
    pub fn file_len(&self, array: ArrayId) -> u64 {
        self.file_len[array]
    }

    /// Total volume size in bytes.
    pub fn volume_bytes(&self) -> u64 {
        self.volume
    }

    /// Number of files (arrays) placed in the volume.
    pub fn num_files(&self) -> usize {
        self.file_base.len()
    }

    /// Volume byte offset of an element.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn element_offset(&self, program: &Program, array: ArrayId, coords: &[i64]) -> u64 {
        let decl = &program.arrays[array];
        let lin = decl.linearize(coords);
        let segs = &self.segments[array];
        let ix = segs.partition_point(|s| s.lin_hi < lin);
        let seg = &segs[ix];
        debug_assert!(seg.lin_lo <= lin && lin <= seg.lin_hi);
        seg.base + (lin - seg.lin_lo) * u64::from(decl.elem_bytes)
    }

    /// Full disk location of an element's first byte.
    pub fn locate_element(
        &self,
        program: &Program,
        array: ArrayId,
        coords: &[i64],
    ) -> DiskLocation {
        self.striping
            .locate_offset(self.element_offset(program, array, coords))
    }

    /// The I/O node owning an element's first byte.
    pub fn disk_of_element(&self, program: &Program, array: ArrayId, coords: &[i64]) -> DiskId {
        self.locate_element(program, array, coords).disk
    }

    /// The set of disks an element's byte range `[start, start+len)`
    /// touches (an element larger than a stripe unit spans several disks).
    pub fn disks_of_element(
        &self,
        program: &Program,
        array: ArrayId,
        coords: &[i64],
    ) -> Vec<DiskId> {
        let decl = &program.arrays[array];
        let start = self.element_offset(program, array, coords);
        let end = start + u64::from(decl.elem_bytes) - 1;
        let first = self.striping.stripe_of_offset(start);
        let last = self.striping.stripe_of_offset(end);
        let mut out = Vec::new();
        for s in first..=last {
            let d = self.striping.disk_of_stripe(s);
            if !out.contains(&d) {
                out.push(d);
            }
            if out.len() == self.striping.num_disks() {
                break;
            }
        }
        out
    }

    /// Bitmask form of [`disks_of_element`](Self::disks_of_element) for
    /// footprint hot loops: bit `d` set ⇔ disk `d` holds part of the
    /// element. Allocation-free; supports up to 64 disks.
    ///
    /// # Panics
    ///
    /// Panics if a touched disk id is ≥ 64.
    pub fn disk_mask_of_element(&self, program: &Program, array: ArrayId, coords: &[i64]) -> u64 {
        let decl = &program.arrays[array];
        let start = self.element_offset(program, array, coords);
        let end = start + u64::from(decl.elem_bytes) - 1;
        let first = self.striping.stripe_of_offset(start);
        let last = self.striping.stripe_of_offset(end);
        let mut mask = 0u64;
        for s in first..=last {
            let d = self.striping.disk_of_stripe(s);
            assert!(d < 64, "disk id {d} exceeds the 64-disk mask limit");
            mask |= 1 << d;
            if mask.count_ones() as usize == self.striping.num_disks() {
                break;
            }
        }
        mask
    }

    /// Number of elements of `array` that fit in one stripe unit (at least
    /// 1; elements larger than a stripe span stripes instead).
    pub fn elements_per_stripe(&self, program: &Program, array: ArrayId) -> u64 {
        let eb = u64::from(program.arrays[array].elem_bytes);
        (self.striping.stripe_unit() / eb).max(1)
    }

    /// The array's placement segments as `(lin_lo, lin_hi, base_byte)`
    /// triples, sorted by linearized element index (`lin_hi` inclusive,
    /// `base_byte` = volume offset of element `lin_lo`). Exposed for
    /// static layout lints: coverage (no gaps), uniqueness (no
    /// double-mapping), and volume-bounds checks.
    pub fn segments(&self, array: ArrayId) -> Vec<(u64, u64, u64)> {
        self.segments[array]
            .iter()
            .map(|s| (s.lin_lo, s.lin_hi, s.base))
            .collect()
    }
}

impl fmt::Display for LayoutMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "layout: {}", self.striping)?;
        for (i, (b, l)) in self.file_base.iter().zip(&self.file_len).enumerate() {
            writeln!(f, "  file {i}: base={b} len={l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_ir::parse_program;

    fn prog() -> Program {
        parse_program(
            "program t;
             array A[16][16] : f64;
             array B[16][16] : f64;
             nest L { for i = 0 .. 0 { A[0][0] = B[0][0]; } }",
        )
        .unwrap()
    }

    #[test]
    fn files_start_on_stripe_rows() {
        let p = prog();
        let m = LayoutMap::new(&p, Striping::new(512, 4, 0));
        // A is 16*16*8 = 2048 B = one stripe row of 4 * 512.
        assert_eq!(m.file_base(0), 0);
        assert_eq!(m.file_base(1), 2048);
        assert_eq!(m.volume_bytes(), 4096);
        // Both files start on disk 0.
        assert_eq!(m.disk_of_element(&p, 0, &[0, 0]), 0);
        assert_eq!(m.disk_of_element(&p, 1, &[0, 0]), 0);
    }

    #[test]
    fn element_disk_round_robin() {
        let p = prog();
        // 512 B stripe = 64 elements = 4 rows of 16.
        let m = LayoutMap::new(&p, Striping::new(512, 4, 0));
        assert_eq!(m.disk_of_element(&p, 0, &[0, 0]), 0);
        assert_eq!(m.disk_of_element(&p, 0, &[3, 15]), 0);
        assert_eq!(m.disk_of_element(&p, 0, &[4, 0]), 1);
        assert_eq!(m.disk_of_element(&p, 0, &[8, 0]), 2);
        assert_eq!(m.disk_of_element(&p, 0, &[12, 0]), 3);
        assert_eq!(m.elements_per_stripe(&p, 0), 64);
    }

    #[test]
    fn large_elements_span_disks() {
        let p = parse_program(
            "program t; array T[4] : f64;
             nest L { for i = 0 .. 0 { T[0] = 1; } }",
        )
        .unwrap();
        // Stripe unit 4 B < 8 B element: each element spans 2 stripes.
        let m = LayoutMap::new(&p, Striping::new(4, 4, 0));
        assert_eq!(m.disks_of_element(&p, 0, &[0]), vec![0, 1]);
        assert_eq!(m.disks_of_element(&p, 0, &[1]), vec![2, 3]);
        assert_eq!(m.elements_per_stripe(&p, 0), 1);
    }

    #[test]
    fn shared_file_shifts_striping_phase() {
        let p = prog();
        let striping = Striping::new(512, 4, 0);
        let separate = LayoutMap::new(&p, striping);
        let shared =
            LayoutMap::with_mapping(&p, striping, &crate::FileMapping::shared(&p, &[vec![0, 1]]));
        assert!(!shared.is_one_to_one());
        // Separately-filed B starts on disk 0; packed behind A (2048 B =
        // exactly one stripe row here) it also lands on disk 0 — so pad A
        // to break alignment with a 3-disk striping instead.
        let striping3 = Striping::new(512, 3, 0);
        let shared3 = LayoutMap::with_mapping(
            &p,
            striping3,
            &crate::FileMapping::shared(&p, &[vec![0, 1]]),
        );
        let separate3 = LayoutMap::new(&p, striping3);
        // A is 2048 B = 4 stripes; B's first element follows immediately →
        // stripe 4 → disk 1 under the shared file, disk 0 separately.
        assert_eq!(separate3.disk_of_element(&p, 1, &[0, 0]), 0);
        assert_eq!(shared3.disk_of_element(&p, 1, &[0, 0]), 1);
        // Offsets remain within the (smaller) shared volume.
        assert!(shared.volume_bytes() <= separate.volume_bytes());
    }

    #[test]
    fn split_rows_places_pieces_on_fresh_stripe_rows() {
        let p = prog();
        let striping = Striping::new(512, 4, 0);
        let split =
            LayoutMap::with_mapping(&p, striping, &crate::FileMapping::split_rows(&p, 0, 2));
        assert!(!split.is_one_to_one());
        // Rows 0..7 in file 0, rows 8..15 in file 1: both files start at a
        // stripe-row boundary, i.e. on disk 0 — whereas under one-to-one
        // row 8 (offset 8*128 = 1024 → stripe 2) would sit on disk 2.
        assert_eq!(split.disk_of_element(&p, 0, &[0, 0]), 0);
        assert_eq!(split.disk_of_element(&p, 0, &[8, 0]), 0);
        let plain = LayoutMap::new(&p, striping);
        assert_eq!(plain.disk_of_element(&p, 0, &[8, 0]), 2);
        // Element offsets stay monotone within each piece.
        assert!(split.element_offset(&p, 0, &[7, 15]) < split.element_offset(&p, 0, &[8, 0]));
    }

    #[test]
    fn relaxed_mapping_round_trips_every_element() {
        let p = prog();
        let striping = Striping::new(512, 4, 0);
        for mapping in [
            crate::FileMapping::shared(&p, &[vec![1, 0]]),
            crate::FileMapping::split_rows(&p, 0, 3),
        ] {
            let m = LayoutMap::with_mapping(&p, striping, &mapping);
            // No two elements may collide in the volume.
            let mut seen = std::collections::HashSet::new();
            for (a, decl) in p.arrays.iter().enumerate() {
                for r in 0..decl.dims[0] as i64 {
                    for c in 0..decl.dims[1] as i64 {
                        let off = m.element_offset(&p, a, &[r, c]);
                        assert!(seen.insert(off), "offset collision at {off}");
                        assert!(off < m.volume_bytes());
                    }
                }
            }
        }
    }

    #[test]
    fn offsets_are_row_major() {
        let p = prog();
        let m = LayoutMap::new(&p, Striping::paper_default());
        assert_eq!(m.element_offset(&p, 0, &[0, 1]), 8);
        assert_eq!(m.element_offset(&p, 0, &[1, 0]), 16 * 8);
        // B's offsets start after A's rounded file.
        assert_eq!(m.element_offset(&p, 1, &[0, 0]), m.file_base(1));
    }
}
