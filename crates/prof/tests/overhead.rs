//! Measures the cost of a disabled profiler scope and asserts it is
//! under 2% of a representative hot-path unit of work.
//!
//! A naive A/B wall-clock comparison (loop with scopes vs loop without)
//! is hopeless on a noisy shared host: run-to-run variance of the
//! workload itself exceeds 10%, far above the 2% bar. Instead the test
//! measures the two quantities separately — the disabled guard over a
//! million tight calls (a stable, milliseconds-long block) and the
//! workload per call — and compares the per-call ratio. The guard is one
//! relaxed atomic load, a few tens of nanoseconds even unoptimized,
//! against a ~100µs workload unit, so the assertion holds with two
//! orders of magnitude of margin.

use std::hint::black_box;
use std::time::Instant;

/// Stand-in for one hot-path unit of work between instrumentation
/// points (the real scopes wrap far larger regions: a polyhedral count,
/// a simulated request batch, a `par_map` chunk).
fn workload(n: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
    }
    acc
}

#[test]
fn disabled_scope_overhead_under_two_percent() {
    const INNER: u64 = 20_000;
    const GUARD_CALLS: u64 = 1_000_000;
    const SAMPLES: u32 = 20;

    dpm_prof::disable();
    dpm_prof::reset();

    // Warm-up.
    black_box(workload(INNER));
    for _ in 0..1_000 {
        black_box(dpm_prof::scope("overhead_probe"));
    }

    // Guard cost: a million disabled open+drop cycles back to back.
    let mut guard_ns = u128::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..GUARD_CALLS {
            black_box(dpm_prof::scope("overhead_probe"));
        }
        guard_ns = guard_ns.min(t.elapsed().as_nanos());
    }
    let guard_per_call = guard_ns as f64 / GUARD_CALLS as f64;

    // Workload cost per instrumented call (min over samples — the
    // low-noise estimator).
    let mut work_ns = u128::MAX;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        black_box(workload(INNER));
        work_ns = work_ns.min(t.elapsed().as_nanos());
    }
    let work_per_call = work_ns as f64;

    // Disabled scopes must record nothing at all.
    assert!(
        dpm_prof::snapshot().is_empty(),
        "disabled profiler recorded frames"
    );

    let ratio = guard_per_call / work_per_call;
    assert!(
        ratio < 0.02,
        "disabled-profiler overhead too high: guard {guard_per_call:.1}ns/call \
         vs workload {work_per_call:.0}ns/call (ratio {ratio:.5})"
    );
}
