//! # dpm-prof — hierarchical self-profiling and streaming run metrics
//!
//! The roadmap's two hottest items — real parallel speedup and streaming
//! simulation at full scale — both need to *see* where wall-clock time and
//! memory go inside the compile → schedule → simulate pipeline. This crate
//! is that lens, in two halves:
//!
//! * **A hierarchical, thread-aware self-profiler.** [`scope`] returns a
//!   guard that times a region and files it under the enclosing scope in a
//!   per-thread call tree. Worker trees flush into a global accumulator
//!   when their adopted context detaches (and at thread exit as a
//!   backstop); [`snapshot`] folds in the calling thread and
//!   returns the combined [`Profile`], exportable as a JSON tree or as
//!   flamegraph-compatible collapsed-stack text. Worker threads adopt the
//!   spawning thread's stack via [`current_context`]/[`ProfContext::attach`],
//!   so a `par_map` issued under `run_app` attributes its workers' time to
//!   `run_app`, not to a disconnected root.
//! * **Constant-memory streaming metrics** ([`hist`], [`stream`]) for the
//!   simulator: log-bucketed (HDR-style) histograms, a bounded queue-depth
//!   gauge sampled in simulated time, and per-RPM spinning-residency
//!   counters — all O(1) memory per disk and mergeable, so they survive a
//!   pull-based streaming simulator with no materialized trace.
//!
//! The profiler is compiled in everywhere but near-free when disabled: an
//! instrumentation point costs one relaxed atomic load (the same contract
//! as `dpm-obs`), measured under 2% on the hot paths by the overhead test.
//! Enabling it never changes what the pipeline computes — only what it
//! reports — which the workspace pins with a bit-identity test.
//!
//! ```
//! dpm_prof::reset();
//! dpm_prof::enable();
//! {
//!     let _outer = dpm_prof::scope("outer");
//!     let _inner = dpm_prof::scope("inner");
//! }
//! dpm_prof::disable();
//! let profile = dpm_prof::snapshot();
//! let outer = profile.find(&["outer"]).unwrap();
//! assert_eq!(profile.node(outer).count, 1);
//! assert!(profile.find(&["outer", "inner"]).is_some());
//! ```
//!
//! Environment contract (used by binaries via [`init_from_env`]):
//! `DPM_PROF` unset/`0`/`off` → disabled; any other value → enabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod stream;

pub use hist::LogHistogram;
pub use stream::{DiskStreamMetrics, QueueDepthGauge, RpmResidency};

use dpm_obs::Json;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether profiling is on. One relaxed atomic load — the entire cost of a
/// disabled instrumentation point.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns profiling on. Scopes opened while disabled stay inert even if
/// profiling is enabled before they close.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns profiling off. Scopes already open keep recording (their guard
/// was armed at open time); new scopes are inert.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Initializes from the environment: `DPM_PROF` unset/`0`/`off`/`false` →
/// disabled, anything else → enabled. Returns whether profiling ended up
/// enabled. Intended for binaries; libraries leave the decision to callers.
pub fn init_from_env() -> bool {
    match std::env::var("DPM_PROF") {
        Ok(v) if !matches!(v.as_str(), "" | "0" | "off" | "false") => {
            enable();
            true
        }
        _ => false,
    }
}

/// One node of a (local or merged) call tree. Index 0 is the synthetic
/// root; every other node was created by a [`scope`] or a ghost context
/// frame.
#[derive(Clone, Debug)]
struct TreeNode {
    name: &'static str,
    parent: usize,
    children: Vec<usize>,
    /// Completed invocations.
    count: u64,
    /// Inclusive wall time of completed invocations, in nanoseconds.
    total_ns: u64,
}

/// An arena call tree: the shape shared by per-thread trees, the global
/// retired accumulator, and [`Profile`].
#[derive(Debug)]
struct Tree {
    nodes: Vec<TreeNode>,
    current: usize,
}

impl Tree {
    fn new() -> Tree {
        Tree {
            nodes: vec![TreeNode {
                name: "",
                parent: 0,
                children: Vec::new(),
                count: 0,
                total_ns: 0,
            }],
            current: 0,
        }
    }

    /// Finds or creates the child of `parent` named `name`.
    fn child(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let ix = self.nodes.len();
        self.nodes.push(TreeNode {
            name,
            parent,
            children: Vec::new(),
            count: 0,
            total_ns: 0,
        });
        self.nodes[parent].children.push(ix);
        ix
    }

    /// Adds every node of `other` into `self`, matching by path.
    fn merge(&mut self, other: &Tree) {
        // map[other index] -> self index, filled in BFS order (parents
        // always precede children in the arena by construction).
        let mut map = vec![0usize; other.nodes.len()];
        for (ix, node) in other.nodes.iter().enumerate().skip(1) {
            let parent = map[node.parent];
            let here = self.child(parent, node.name);
            self.nodes[here].count += node.count;
            self.nodes[here].total_ns += node.total_ns;
            map[ix] = here;
        }
    }

    fn clear(&mut self) {
        self.nodes.truncate(1);
        self.nodes[0].children.clear();
        self.nodes[0].count = 0;
        self.nodes[0].total_ns = 0;
        self.current = 0;
    }
}

/// Global accumulator of trees from threads that have exited. Pool workers
/// are scoped threads, so by the time their spawner regains control their
/// trees have been merged here.
fn retired() -> &'static Mutex<Tree> {
    static RETIRED: OnceLock<Mutex<Tree>> = OnceLock::new();
    RETIRED.get_or_init(|| Mutex::new(Tree::new()))
}

/// Thread-local tree wrapper whose drop (thread exit) merges into the
/// global retired accumulator.
struct LocalTree {
    tree: Tree,
}

impl Drop for LocalTree {
    fn drop(&mut self) {
        if self.tree.nodes.len() > 1 {
            retired()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .merge(&self.tree);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalTree> = RefCell::new(LocalTree { tree: Tree::new() });
}

/// Guard returned by [`scope`]: accumulates the elapsed wall time and one
/// invocation into its call-tree node when dropped. Inert (a single
/// `None`) when profiling was disabled at open time.
pub struct ScopeGuard {
    data: Option<ScopeData>,
}

struct ScopeData {
    node: usize,
    prev: usize,
    start: Instant,
}

impl ScopeGuard {
    /// Whether this guard is actually recording.
    pub fn active(&self) -> bool {
        self.data.is_some()
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        let ns = u64::try_from(data.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        LOCAL.with(|t| {
            let mut t = t.borrow_mut();
            let tree = &mut t.tree;
            tree.nodes[data.node].count += 1;
            tree.nodes[data.node].total_ns += ns;
            // Guards normally drop LIFO; if one was moved out of order,
            // leave the deeper cursor alone rather than corrupting it.
            if tree.current == data.node {
                tree.current = data.prev;
            }
        });
    }
}

/// Opens a named scope under the thread's current scope and returns the
/// guard that times it. `name` should be a stable, human-meaningful label
/// (`qd_footprints`, `simulate`, …): it becomes one frame of the
/// collapsed-stack output.
pub fn scope(name: &'static str) -> ScopeGuard {
    if !enabled() {
        return ScopeGuard { data: None };
    }
    let (node, prev) = LOCAL.with(|t| {
        let mut t = t.borrow_mut();
        let tree = &mut t.tree;
        let prev = tree.current;
        let node = tree.child(prev, name);
        tree.current = node;
        (node, prev)
    });
    ScopeGuard {
        data: Some(ScopeData {
            node,
            prev,
            start: Instant::now(),
        }),
    }
}

/// A captured scope path, used to carry profiling context across thread
/// spawns: capture with [`current_context`] on the spawning thread, then
/// [`attach`](ProfContext::attach) inside each worker so the worker's
/// scopes nest under the spawner's path instead of a bare root.
#[derive(Clone, Debug, Default)]
pub struct ProfContext {
    path: Vec<&'static str>,
}

impl ProfContext {
    /// Whether the context carries any frames.
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// Re-creates the captured path as *ghost frames* (no count, no time
    /// of their own) in the calling thread's tree and makes its deepest
    /// frame the current scope until the returned guard drops. An empty
    /// context still returns an active guard when profiling is enabled:
    /// the guard's drop is what flushes a worker's tree into the global
    /// accumulator.
    pub fn attach(&self) -> ContextGuard {
        if !enabled() {
            return ContextGuard { prev: None };
        }
        let prev = LOCAL.with(|t| {
            let mut t = t.borrow_mut();
            let tree = &mut t.tree;
            let prev = tree.current;
            let mut at = tree.current;
            for name in &self.path {
                at = tree.child(at, name);
            }
            tree.current = at;
            prev
        });
        ContextGuard { prev: Some(prev) }
    }
}

/// Guard returned by [`ProfContext::attach`]; restores the thread's
/// previous current scope on drop.
pub struct ContextGuard {
    prev: Option<usize>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let Some(prev) = self.prev.take() else {
            return;
        };
        LOCAL.with(|t| {
            let mut t = t.borrow_mut();
            t.tree.current = prev;
            // A worker that attached at its root is done with its task:
            // flush its tree into the retired accumulator now. Relying on
            // thread exit alone would race `thread::scope`, which can
            // return before unjoined threads run their TLS destructors.
            if prev == 0 && t.tree.nodes.len() > 1 {
                retired()
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .merge(&t.tree);
                t.tree.clear();
            }
        });
    }
}

/// Captures the calling thread's open scope path (root-first). Cheap when
/// profiling is disabled (returns an empty context).
pub fn current_context() -> ProfContext {
    if !enabled() {
        return ProfContext::default();
    }
    LOCAL.with(|t| {
        let t = t.borrow();
        let tree = &t.tree;
        let mut path = Vec::new();
        let mut at = tree.current;
        while at != 0 {
            path.push(tree.nodes[at].name);
            at = tree.nodes[at].parent;
        }
        path.reverse();
        ProfContext { path }
    })
}

/// Clears all accumulated profiling data: the retired accumulator and the
/// calling thread's tree. Other live threads' trees are untouched — call
/// this between parallel sections, not during one.
pub fn reset() {
    retired().lock().unwrap_or_else(|e| e.into_inner()).clear();
    LOCAL.with(|t| t.borrow_mut().tree.clear());
}

/// One node of a merged [`Profile`].
#[derive(Clone, Debug)]
pub struct ProfNode {
    /// Scope label (empty for the root).
    pub name: &'static str,
    /// Parent index (the root is its own parent).
    pub parent: usize,
    /// Child indices.
    pub children: Vec<usize>,
    /// Completed invocations.
    pub count: u64,
    /// Inclusive wall time (ns) of completed invocations. For scopes whose
    /// children ran on pool workers in parallel, the children's inclusive
    /// sum can exceed this (CPU time vs wall time); exclusive times are
    /// clamped at zero accordingly.
    pub total_ns: u64,
}

/// An immutable merged call tree: the retired accumulator plus the calling
/// thread's tree at [`snapshot`] time.
#[derive(Clone, Debug)]
pub struct Profile {
    nodes: Vec<ProfNode>,
}

/// Takes a snapshot of everything profiled so far: trees of exited threads
/// plus the calling thread's own tree. Call after parallel sections have
/// joined (the `dpm-exec` pool uses scoped threads, so this holds whenever
/// its maps have returned).
pub fn snapshot() -> Profile {
    let mut merged = Tree::new();
    merged.merge(&retired().lock().unwrap_or_else(|e| e.into_inner()));
    LOCAL.with(|t| merged.merge(&t.borrow().tree));
    Profile {
        nodes: merged
            .nodes
            .iter()
            .map(|n| ProfNode {
                name: n.name,
                parent: n.parent,
                children: n.children.clone(),
                count: n.count,
                total_ns: n.total_ns,
            })
            .collect(),
    }
}

impl Profile {
    /// The root index (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Node by index.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of range.
    pub fn node(&self, ix: usize) -> &ProfNode {
        &self.nodes[ix]
    }

    /// Number of nodes, root included.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the profile holds nothing but the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Finds the node at `path` (names from the root down).
    pub fn find(&self, path: &[&str]) -> Option<usize> {
        let mut at = 0usize;
        for name in path {
            at = *self.nodes[at]
                .children
                .iter()
                .find(|&&c| self.nodes[c].name == *name)?;
        }
        Some(at)
    }

    /// Inclusive nanoseconds of `ix`; the root reports its children's sum.
    pub fn inclusive_ns(&self, ix: usize) -> u64 {
        if ix == 0 {
            self.children_ns(0)
        } else {
            self.nodes[ix].total_ns
        }
    }

    /// Sum of the children's inclusive times.
    fn children_ns(&self, ix: usize) -> u64 {
        self.nodes[ix]
            .children
            .iter()
            .map(|&c| self.nodes[c].total_ns)
            .sum()
    }

    /// Exclusive (self) nanoseconds of `ix`: inclusive minus children,
    /// clamped at zero (parallel children can overlap the parent).
    pub fn exclusive_ns(&self, ix: usize) -> u64 {
        self.inclusive_ns(ix).saturating_sub(self.children_ns(ix))
    }

    /// Fraction of `ix`'s inclusive time attributed to named child scopes,
    /// clamped to `0.0..=1.0` (workers running in parallel can make the
    /// children's sum exceed the parent's wall time). A node with no time
    /// reports full coverage.
    pub fn coverage(&self, ix: usize) -> f64 {
        let own = self.inclusive_ns(ix);
        if own == 0 {
            return 1.0;
        }
        (self.children_ns(ix) as f64 / own as f64).min(1.0)
    }

    /// Total profiled nanoseconds (the root's inclusive time).
    pub fn total_ns(&self) -> u64 {
        self.inclusive_ns(0)
    }

    /// Flamegraph-compatible collapsed-stack text: one line per node with
    /// positive exclusive time, `frame;frame;frame <exclusive_us>`. Feed
    /// it straight to `flamegraph.pl` / `inferno-flamegraph`.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        let mut stack: Vec<&'static str> = Vec::new();
        self.collapse_into(0, &mut stack, &mut out);
        out
    }

    fn collapse_into(&self, ix: usize, stack: &mut Vec<&'static str>, out: &mut String) {
        if ix != 0 {
            stack.push(self.nodes[ix].name);
            let us = self.exclusive_ns(ix) / 1_000;
            if us > 0 || self.nodes[ix].children.is_empty() {
                out.push_str(&stack.join(";"));
                out.push(' ');
                out.push_str(&us.to_string());
                out.push('\n');
            }
        }
        for &c in &self.nodes[ix].children {
            self.collapse_into(c, stack, out);
        }
        if ix != 0 {
            stack.pop();
        }
    }

    /// The call tree as a JSON document: nested
    /// `{name, count, inclusive_us, exclusive_us, children: [...]}`.
    pub fn to_json(&self) -> Json {
        self.node_json(0)
    }

    fn node_json(&self, ix: usize) -> Json {
        let children: Vec<Json> = self.nodes[ix]
            .children
            .iter()
            .map(|&c| self.node_json(c))
            .collect();
        Json::obj(vec![
            (
                "name",
                Json::Str(if ix == 0 {
                    "root".to_string()
                } else {
                    self.nodes[ix].name.to_string()
                }),
            ),
            ("count", Json::U64(self.nodes[ix].count)),
            ("inclusive_us", Json::U64(self.inclusive_ns(ix) / 1_000)),
            ("exclusive_us", Json::U64(self.exclusive_ns(ix) / 1_000)),
            ("children", Json::Arr(children)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Profiler state is global; tests must not interleave.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fresh() -> MutexGuard<'static, ()> {
        let g = lock();
        disable();
        reset();
        g
    }

    #[test]
    fn disabled_scopes_are_inert() {
        let _g = fresh();
        {
            let sp = scope("quiet");
            assert!(!sp.active());
        }
        assert!(snapshot().is_empty());
    }

    #[test]
    fn scopes_nest_and_count() {
        let _g = fresh();
        enable();
        for _ in 0..3 {
            let _a = scope("a");
            let _b = scope("b");
        }
        {
            let _c = scope("c");
        }
        disable();
        let p = snapshot();
        let a = p.find(&["a"]).unwrap();
        let b = p.find(&["a", "b"]).unwrap();
        assert_eq!(p.node(a).count, 3);
        assert_eq!(p.node(b).count, 3);
        assert!(p.find(&["b"]).is_none(), "b only exists under a");
        assert!(p.find(&["c"]).is_some());
        // Inclusive covers the child.
        assert!(p.inclusive_ns(a) >= p.inclusive_ns(b));
        assert_eq!(p.exclusive_ns(a), p.inclusive_ns(a) - p.inclusive_ns(b));
    }

    #[test]
    fn worker_threads_merge_under_adopted_context() {
        let _g = fresh();
        enable();
        {
            let _outer = scope("outer");
            let ctx = current_context();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let ctx = ctx.clone();
                    s.spawn(move || {
                        let _adopt = ctx.attach();
                        let _w = scope("worker");
                    });
                }
            });
        }
        disable();
        let p = snapshot();
        let w = p.find(&["outer", "worker"]).expect("nested under outer");
        assert_eq!(p.node(w).count, 2);
        // The ghost path frame carries no invocations of its own beyond
        // the real outer scope's one.
        let outer = p.find(&["outer"]).unwrap();
        assert_eq!(p.node(outer).count, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let _g = fresh();
        enable();
        {
            let _a = scope("gone");
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _b = scope("gone_too");
            });
        });
        reset();
        disable();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn collapsed_output_has_full_paths() {
        let _g = fresh();
        enable();
        {
            let _a = scope("alpha");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = scope("beta");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        disable();
        let p = snapshot();
        let text = p.to_collapsed();
        assert!(text.contains("alpha;beta "), "{text}");
        for line in text.lines() {
            let (_stack, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(value.parse::<u64>().is_ok(), "bad line {line}");
        }
        let json = p.to_json();
        let mut s = String::new();
        json.write(&mut s);
        assert!(s.contains("\"alpha\""));
    }

    #[test]
    fn coverage_is_children_over_parent() {
        let _g = fresh();
        enable();
        {
            let _a = scope("covered");
            {
                let _b = scope("child");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        disable();
        let p = snapshot();
        let a = p.find(&["covered"]).unwrap();
        assert!(p.coverage(a) > 0.5, "coverage {}", p.coverage(a));
        assert!(p.coverage(a) <= 1.0);
    }

    #[test]
    fn context_attach_is_inert_when_disabled() {
        let _g = fresh();
        let ctx = current_context();
        assert!(ctx.is_empty());
        let _guard = ctx.attach();
        assert!(snapshot().is_empty());
    }
}
