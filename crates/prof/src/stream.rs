//! Streaming, constant-memory per-disk simulation metrics.
//!
//! The upcoming pull-based streaming simulator will never materialize a
//! trace, so anything we want to know about a run must be computed
//! incrementally from the event stream with O(1) memory per disk. This
//! module is that accumulator set:
//!
//! * [`LogHistogram`]s for request service time and spin-up latency
//!   (microseconds of simulated time — integers, so bit-reproducible at
//!   any thread count);
//! * a [`QueueDepthGauge`] sampling outstanding sub-requests in simulated
//!   time over a bounded completion window;
//! * [`RpmResidency`]: per-RPM spinning-time counters (the DRPM analogue
//!   of the busy/idle/standby split `DiskStats` already tracks).
//!
//! Everything merges exactly, so per-disk shards aggregate to run totals
//! in the report layer without a second pass over the stream.

use crate::hist::LogHistogram;
use dpm_obs::Json;

/// Bounded window of in-flight completion times tracked by the gauge.
/// Constant memory: depths beyond this saturate (recorded as `CAP`).
const DEPTH_WINDOW: usize = 64;

/// Time-weighted queue-depth gauge over simulated time.
///
/// The per-disk sub-request stream arrives in non-decreasing arrival
/// order and completes in FIFO order, so the set of outstanding requests
/// at any arrival is a suffix of recent completions. The gauge keeps at
/// most [`DEPTH_WINDOW`] completion times (constant memory) and
/// integrates `depth × Δt` between arrivals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueDepthGauge {
    /// Outstanding completion times, oldest first (bounded ring).
    window: Vec<f64>,
    /// `Σ depth · Δt` in depth·ms of simulated time.
    depth_ms: f64,
    /// Simulated time of the last sample.
    last_ms: f64,
    /// Largest observed depth.
    max_depth: u64,
    /// Arrivals sampled.
    samples: u64,
}

impl QueueDepthGauge {
    /// A fresh gauge at simulated time zero.
    pub fn new() -> QueueDepthGauge {
        QueueDepthGauge::default()
    }

    /// Samples the gauge at an arrival: expires completions at or before
    /// `arrival_ms`, charges the elapsed interval at the previous depth,
    /// and counts the sample.
    pub fn on_arrival(&mut self, arrival_ms: f64) {
        let dt = (arrival_ms - self.last_ms).max(0.0);
        self.depth_ms += self.window.len() as f64 * dt;
        self.last_ms = self.last_ms.max(arrival_ms);
        self.window.retain(|&c| c > arrival_ms);
        self.samples += 1;
    }

    /// Registers a request's completion time (non-decreasing per disk).
    pub fn on_completion(&mut self, completion_ms: f64) {
        if self.window.len() == DEPTH_WINDOW {
            self.window.remove(0);
        }
        self.window.push(completion_ms);
        self.max_depth = self.max_depth.max(self.window.len() as u64);
    }

    /// Mean outstanding depth over `horizon_ms` of simulated time
    /// (conventionally the makespan). Zero for an idle disk.
    pub fn mean_depth(&self, horizon_ms: f64) -> f64 {
        if horizon_ms <= 0.0 {
            0.0
        } else {
            self.depth_ms / horizon_ms
        }
    }

    /// Largest observed depth (saturates at the window size).
    pub fn max_depth(&self) -> u64 {
        self.max_depth
    }

    /// Arrivals sampled.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Folds another disk's gauge into an aggregate: depth-time and
    /// samples add, max depth takes the maximum. (The completion window
    /// is per-disk state and does not participate.)
    pub fn merge(&mut self, other: &QueueDepthGauge) {
        self.depth_ms += other.depth_ms;
        self.samples += other.samples;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.last_ms = self.last_ms.max(other.last_ms);
    }
}

/// Per-RPM spinning-time residency: how long the spindle spent at each
/// speed level (busy or idle — standby and transitions are accounted by
/// the existing `DiskStats` fields). At most one entry per DRPM level,
/// so memory is O(#levels), a small constant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RpmResidency {
    levels: Vec<(u32, f64)>,
}

impl RpmResidency {
    /// A fresh residency table.
    pub fn new() -> RpmResidency {
        RpmResidency::default()
    }

    /// Accrues `ms` of simulated time at `rpm`. Levels appear in
    /// first-accrual order; lookups are linear over the handful of DRPM
    /// steps.
    pub fn accrue(&mut self, rpm: u32, ms: f64) {
        if ms <= 0.0 {
            return;
        }
        match self.levels.iter_mut().find(|(r, _)| *r == rpm) {
            Some((_, t)) => *t += ms,
            None => self.levels.push((rpm, ms)),
        }
    }

    /// `(rpm, ms)` entries sorted by RPM descending (full speed first).
    pub fn levels(&self) -> Vec<(u32, f64)> {
        let mut v = self.levels.clone();
        v.sort_by_key(|&(rpm, _)| std::cmp::Reverse(rpm));
        v
    }

    /// Total spinning time across levels.
    pub fn total_ms(&self) -> f64 {
        self.levels.iter().map(|(_, t)| t).sum()
    }

    /// Merges another residency table into this one.
    pub fn merge(&mut self, other: &RpmResidency) {
        for &(rpm, ms) in &other.levels {
            self.accrue(rpm, ms);
        }
    }
}

/// The full streaming metric set for one disk (or, after merging, one
/// run). All state is O(1) per disk and derived purely from simulated
/// time, so it is bit-identical between the serial and sharded simulator
/// passes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiskStreamMetrics {
    /// Pure service time (positioning + transfer) per sub-request, µs.
    pub service_us: LogHistogram,
    /// Spin-up / power-transition stall suffered by requests, µs. One
    /// recording per stalled request, including fault-retry spin-ups.
    pub spin_up_us: LogHistogram,
    /// Outstanding-request gauge in simulated time.
    pub queue: QueueDepthGauge,
    /// Per-RPM spinning residency.
    pub residency: RpmResidency,
}

impl DiskStreamMetrics {
    /// A fresh metric set.
    pub fn new() -> DiskStreamMetrics {
        DiskStreamMetrics::default()
    }

    /// Merges another disk's metrics into this aggregate.
    pub fn merge(&mut self, other: &DiskStreamMetrics) {
        self.service_us.merge(&other.service_us);
        self.spin_up_us.merge(&other.spin_up_us);
        self.queue.merge(&other.queue);
        self.residency.merge(&other.residency);
    }

    /// Summary JSON for reports: histogram quantiles, queue statistics,
    /// and the RPM residency table. `horizon_ms` (conventionally the
    /// makespan, times the disk count for aggregates) normalizes the
    /// mean queue depth.
    pub fn to_json(&self, horizon_ms: f64) -> Json {
        let residency: Vec<Json> = self
            .residency
            .levels()
            .into_iter()
            .map(|(rpm, ms)| {
                Json::obj(vec![
                    ("rpm", Json::U64(u64::from(rpm))),
                    ("ms", Json::F64(ms)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("service_count", Json::U64(self.service_us.count())),
            ("service_p50_us", Json::U64(self.service_us.quantile(0.5))),
            ("service_p99_us", Json::U64(self.service_us.quantile(0.99))),
            ("service_max_us", Json::U64(self.service_us.max())),
            ("spin_up_stalls", Json::U64(self.spin_up_us.count())),
            ("spin_up_p99_us", Json::U64(self.spin_up_us.quantile(0.99))),
            (
                "mean_queue_depth",
                Json::F64(self.queue.mean_depth(horizon_ms)),
            ),
            ("max_queue_depth", Json::U64(self.queue.max_depth())),
            ("rpm_residency", Json::Arr(residency)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_integrates_depth_over_time() {
        let mut g = QueueDepthGauge::new();
        g.on_arrival(0.0);
        g.on_completion(10.0); // outstanding until t=10
        g.on_arrival(5.0); // depth was 1 over [0,5): +5 depth·ms
        g.on_completion(12.0);
        g.on_arrival(20.0); // depth was 2 over [5,20) but both expire at 20
        assert_eq!(g.max_depth(), 2);
        assert_eq!(g.samples(), 3);
        // [0,5): 1·5 = 5; [5,20): 2·15 = 30.
        assert!((g.depth_ms - 35.0).abs() < 1e-9, "{}", g.depth_ms);
        assert!((g.mean_depth(100.0) - 0.35).abs() < 1e-9);
    }

    #[test]
    fn gauge_window_saturates_not_grows() {
        let mut g = QueueDepthGauge::new();
        for i in 0..10_000u64 {
            g.on_arrival(i as f64);
            g.on_completion(1e12); // nothing ever completes
        }
        assert!(g.window.len() <= DEPTH_WINDOW);
        assert_eq!(g.max_depth(), DEPTH_WINDOW as u64);
    }

    #[test]
    fn residency_accrues_and_merges() {
        let mut a = RpmResidency::new();
        a.accrue(15_000, 10.0);
        a.accrue(9_000, 5.0);
        a.accrue(15_000, 2.5);
        let mut b = RpmResidency::new();
        b.accrue(9_000, 1.5);
        b.accrue(3_000, 1.0);
        a.merge(&b);
        assert_eq!(a.levels(), vec![(15_000, 12.5), (9_000, 6.5), (3_000, 1.0)]);
        assert!((a.total_ms() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn disk_metrics_merge_and_export() {
        let mut a = DiskStreamMetrics::new();
        a.service_us.record_ms(2.0);
        a.spin_up_us.record_ms(10_900.0);
        a.residency.accrue(15_000, 100.0);
        let mut b = DiskStreamMetrics::new();
        b.service_us.record_ms(4.0);
        let mut all = DiskStreamMetrics::new();
        all.merge(&a);
        all.merge(&b);
        assert_eq!(all.service_us.count(), 2);
        assert_eq!(all.spin_up_us.count(), 1);
        let mut s = String::new();
        all.to_json(1000.0).write(&mut s);
        assert!(s.contains("\"service_p99_us\""), "{s}");
        assert!(s.contains("\"rpm_residency\""), "{s}");
    }
}
