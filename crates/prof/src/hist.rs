//! Log-bucketed (HDR-style) histograms with constant memory and exact
//! mergeability.
//!
//! Values are `u64` in a caller-chosen unit (the simulator records
//! microseconds of *simulated* time, so results are bit-reproducible at
//! any thread count). Buckets are linear below `2^sub_bits` and then
//! `2^sub_bits` sub-buckets per power of two, giving a bounded relative
//! error of `2^-sub_bits` at a few kilobytes of fixed storage — the
//! classic HDR-histogram layout, reduced to what the simulator needs.
//!
//! Merging is exact (per-bucket addition), commutative, and associative:
//! merging per-shard histograms equals the single-stream histogram over
//! the concatenated values. The workspace's streaming-metrics tests pin
//! that property, because the sharded simulator relies on it.

use dpm_obs::Json;

/// A fixed-shape log-bucketed histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    sub_bits: u32,
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Sub-bucket resolution used by the simulator's histograms: 16
/// sub-buckets per octave, ≤ 6.25% relative bucket error.
pub const DEFAULT_SUB_BITS: u32 = 4;

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new(DEFAULT_SUB_BITS)
    }
}

impl LogHistogram {
    /// Creates an empty histogram with `2^sub_bits` sub-buckets per
    /// octave. All histograms that will be merged must share `sub_bits`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= sub_bits <= 8`.
    pub fn new(sub_bits: u32) -> LogHistogram {
        assert!((1..=8).contains(&sub_bits), "sub_bits out of range");
        let len = Self::index_of(u64::MAX, sub_bits) + 1;
        LogHistogram {
            sub_bits,
            counts: vec![0; len],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of `v`: identity below `2^sub_bits`, then
    /// `2^sub_bits` linear sub-buckets per octave.
    fn index_of(v: u64, sub_bits: u32) -> usize {
        let sub = 1u64 << sub_bits;
        if v < sub {
            return v as usize;
        }
        let msb = 63 - u64::from(v.leading_zeros());
        let shift = msb - u64::from(sub_bits);
        (((shift + 1) << sub_bits) + ((v >> shift) - sub)) as usize
    }

    /// Lowest value mapping to bucket `ix`.
    fn bucket_low(&self, ix: usize) -> u64 {
        let sub = 1u64 << self.sub_bits;
        let ix = ix as u64;
        if ix < sub {
            return ix;
        }
        let octave = (ix >> self.sub_bits) - 1;
        (sub + (ix & (sub - 1))) << octave
    }

    /// Highest value mapping to bucket `ix`.
    fn bucket_high(&self, ix: usize) -> u64 {
        if ix + 1 < self.counts.len() {
            self.bucket_low(ix + 1) - 1
        } else {
            u64::MAX
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index_of(v, self.sub_bits)] += n;
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a simulated duration in milliseconds as integer
    /// microseconds (the simulator's convention). Negative or NaN values
    /// clamp to zero — they cannot occur in a well-formed run but must
    /// not corrupt the histogram if they do.
    pub fn record_ms(&mut self, ms: f64) {
        let us = if ms.is_finite() && ms > 0.0 {
            (ms * 1_000.0).round() as u64
        } else {
            0
        };
        self.record(us);
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at or below which a fraction `q` of recordings fall,
    /// reported as the containing bucket's upper bound (so the true
    /// quantile is never under-reported by more than the bucket width).
    /// Returns 0 for an empty histogram; `q` is clamped to `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (ix, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_high(ix).min(self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self` (exact per-bucket addition).
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different `sub_bits`.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "histogram shapes differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(low, high, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(ix, &c)| (self.bucket_low(ix), self.bucket_high(ix), c))
            .collect()
    }

    /// Compact JSON export: summary statistics plus the sparse non-zero
    /// buckets (`[low, count]` pairs — the shape is implied by
    /// `sub_bits`).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(low, _, c)| Json::Arr(vec![Json::U64(low), Json::U64(c)]))
            .collect();
        Json::obj(vec![
            ("sub_bits", Json::U64(u64::from(self.sub_bits))),
            ("count", Json::U64(self.count)),
            ("min", Json::U64(self.min())),
            ("max", Json::U64(self.max)),
            ("mean", Json::F64(self.mean())),
            ("p50", Json::U64(self.quantile(0.50))),
            ("p99", Json::U64(self.quantile(0.99))),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new(4);
        for v in 0..16u64 {
            h.record(v);
        }
        for (ix, (low, high, c)) in h.nonzero_buckets().into_iter().enumerate() {
            assert_eq!(low, ix as u64);
            assert_eq!(high, ix as u64);
            assert_eq!(c, 1);
        }
    }

    #[test]
    fn buckets_partition_the_domain() {
        let h = LogHistogram::new(4);
        // Every boundary value maps into a bucket whose [low, high]
        // contains it, and bucket ranges chain without gaps.
        let mut prev_high = None::<u64>;
        for ix in 0..h.counts.len() {
            let (low, high) = (h.bucket_low(ix), h.bucket_high(ix));
            assert!(low <= high, "bucket {ix}");
            if let Some(ph) = prev_high {
                assert_eq!(low, ph + 1, "gap before bucket {ix}");
            }
            assert_eq!(LogHistogram::index_of(low, 4), ix);
            assert_eq!(LogHistogram::index_of(high, 4), ix);
            prev_high = Some(high);
        }
        assert_eq!(prev_high, Some(u64::MAX));
    }

    #[test]
    fn relative_error_is_bounded() {
        let h_bits = 4u32;
        let mut h = LogHistogram::new(h_bits);
        for v in [17u64, 1000, 123_456, 987_654_321, u64::MAX / 3] {
            h.record(v);
            let ix = LogHistogram::index_of(v, h_bits);
            let width = h.bucket_high(ix) - h.bucket_low(ix);
            assert!(
                (width as f64) <= (v as f64) / f64::from(1u32 << h_bits) + 1.0,
                "bucket too wide for {v}: {width}"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_matches_single_stream() {
        let values: Vec<u64> = (0..1000u64).map(|i| i * i % 77_777).collect();
        let mut single = LogHistogram::new(4);
        for &v in &values {
            single.record(v);
        }
        // Shard three ways, merge in two different groupings.
        let mut shards: Vec<LogHistogram> = (0..3).map(|_| LogHistogram::new(4)).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % 3].record(v);
        }
        let mut left = shards[0].clone();
        left.merge(&shards[1]);
        left.merge(&shards[2]);
        let mut right = shards[2].clone();
        right.merge(&shards[1]);
        right.merge(&shards[0]);
        assert_eq!(left, right);
        assert_eq!(left, single);
    }

    #[test]
    fn quantiles_and_stats() {
        let mut h = LogHistogram::new(4);
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        let p50 = h.quantile(0.5);
        // Bucket error at most 1/16 of the value.
        assert!((50..=54).contains(&p50), "p50 {p50}");
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn record_ms_rounds_to_microseconds() {
        let mut h = LogHistogram::new(4);
        h.record_ms(1.5); // 1500 µs
        h.record_ms(0.0004); // rounds to 0
        h.record_ms(f64::NAN); // clamps to 0
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1500);
        assert_eq!(h.min(), 0);
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = LogHistogram::new(4);
        a.merge(&LogHistogram::new(5));
    }
}
