//! # dpm-poly — integer set algebra and loop generation
//!
//! A small, from-scratch substitute for the Omega library as used by
//! *"A Compiler-Guided Approach for Reducing Disk Power Consumption by
//! Exploiting Disk Access Locality"* (CGO 2006): affine expressions and
//! constraints, convex integer polyhedra with Fourier–Motzkin projection,
//! finite unions of polyhedra with exact difference/intersection, and
//! `codegen`-style scanning-loop synthesis.
//!
//! The restructuring compiler (`dpm-core`) uses this crate to build per-disk
//! iteration sets `Q_d`, compute `Q − Q_d` as the algorithm of the paper's
//! Figure 3 requires, and to regenerate loop nests that enumerate each set
//! (the paper's Figure 2(c) output).
//!
//! ## Example
//!
//! ```
//! use dpm_poly::{Polyhedron, Set, ScanNest};
//!
//! // Iteration space { (i, j) | 0 <= i <= 9, 0 <= j <= 9 } …
//! let space = Polyhedron::universe(2).with_range(0, 0, 9).with_range(1, 0, 9);
//! // … minus the strictly lower-triangular half:
//! let upper = Set::from(space.clone()).subtract(&Set::from(
//!     space.clone().with(dpm_poly::Constraint::geq_zero(
//!         dpm_poly::LinExpr::var(2, 0).minus(&dpm_poly::LinExpr::var(2, 1)).plus_const(-1),
//!     )),
//! ));
//! assert_eq!(upper.count_points(), 55);
//!
//! // Generate a loop nest scanning the full space:
//! let nest = ScanNest::build(&space);
//! assert_eq!(nest.count(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod constraint;
mod expr;
mod map;
mod polyhedron;
mod set;

pub use codegen::{BoundTerm, ScanCursor, ScanLoop, ScanNest, ScanProgram};
pub use constraint::{Constraint, Relation};
pub use expr::{ceil_div, floor_div, gcd, LinExpr};
pub use map::AffineMap;
pub use polyhedron::Polyhedron;
pub use set::{Set, SetCursor};
