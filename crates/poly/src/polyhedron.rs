//! Convex integer polyhedra: conjunctions of affine constraints, with
//! Fourier–Motzkin projection, exact integer point enumeration, closed-form
//! point counting, and emptiness testing.
//!
//! Every query that needs the projection chain (`is_empty`, `lexmin`,
//! `lexmax`, `enumerate`, `count_points`, `bounding_box`) shares one lazily
//! computed [`ScanData`] per polyhedron: the chain is built once, its level
//! bounds are parsed once, and the cache is invalidated whenever a
//! constraint is added. `count_points` additionally answers in closed form
//! whenever the chain's level bounds allow it (see [`Polyhedron::count_points`]).

use crate::constraint::{reduce_pair, Constraint, Relation};
use crate::expr::{ceil_div, floor_div, LinExpr};
use std::fmt;
use std::sync::OnceLock;

/// A conjunction of affine constraints over `dim` integer variables.
///
/// The empty conjunction is the universe. A polyhedron whose constraints are
/// mutually unsatisfiable over the integers is *empty*; emptiness is decided
/// exactly by [`Polyhedron::find_point`] as long as every variable is
/// bounded (which is always the case for loop iteration spaces).
///
/// # Examples
///
/// ```
/// use dpm_poly::{Polyhedron, Constraint, LinExpr};
/// // { (i, j) | 0 <= i <= 3, 0 <= j <= i }
/// let p = Polyhedron::universe(2)
///     .with(Constraint::geq_zero(LinExpr::var(2, 0)))
///     .with(Constraint::geq_zero(LinExpr::var(2, 0).scaled(-1).plus_const(3)))
///     .with(Constraint::geq_zero(LinExpr::var(2, 1)))
///     .with(Constraint::geq_zero(LinExpr::var(2, 0).minus(&LinExpr::var(2, 1))));
/// assert_eq!(p.count_points(), 4 + 3 + 2 + 1);
/// ```
pub struct Polyhedron {
    dim: usize,
    constraints: Vec<Constraint>,
    /// Set when constraint normalization proves unsatisfiability.
    trivially_empty: bool,
    /// Lazily computed query results; reset by any mutation.
    cache: QueryCache,
}

/// Cached answers to the projection-chain queries. The cache is *not* part
/// of the polyhedron's value: `Clone` carries computed entries along (they
/// stay valid for an identical constraint system), `PartialEq` ignores
/// them, and [`Polyhedron::add`] resets the whole cache.
#[derive(Default)]
struct QueryCache {
    scan: OnceLock<ScanData>,
    lexmin: OnceLock<Option<Vec<i64>>>,
    lexmax: OnceLock<Option<Vec<i64>>>,
    count: OnceLock<u64>,
    bbox: OnceLock<Vec<(Option<i64>, Option<i64>)>>,
    rat_empty: OnceLock<bool>,
}

impl Clone for QueryCache {
    fn clone(&self) -> Self {
        fn copy<T: Clone>(src: &OnceLock<T>) -> OnceLock<T> {
            let out = OnceLock::new();
            if let Some(v) = src.get() {
                let _ = out.set(v.clone());
            }
            out
        }
        QueryCache {
            scan: copy(&self.scan),
            lexmin: copy(&self.lexmin),
            lexmax: copy(&self.lexmax),
            count: copy(&self.count),
            bbox: copy(&self.bbox),
            rat_empty: copy(&self.rat_empty),
        }
    }
}

/// Everything the scanning queries need, derived from the projection chain
/// exactly once per polyhedron.
#[derive(Clone)]
struct ScanData {
    /// `chain[k]`: this polyhedron with variables `k+1..dim` eliminated.
    chain: Vec<Polyhedron>,
    /// Per level, the bounds of `chain[k]` on variable `k`, parsed into
    /// `(divisor, numerator)` pairs so scans evaluate them without cloning.
    levels: Vec<LevelBounds>,
    /// Whether the top projection is trivially infeasible.
    infeasible: bool,
    /// `suffix_const[k]` is the exact point count of levels `k..dim` when
    /// every one of those levels has constant bounds (the rectangular
    /// closed form); `None` otherwise. Length `dim + 1`, last entry 1.
    suffix_const: Vec<Option<u64>>,
}

/// Parsed bounds of one scan level. A lower entry `(a, e)` encodes
/// `x >= ceil(-e(prefix) / a)`; an upper entry encodes
/// `x <= floor(e(prefix) / a)`. Both divisors are positive, and `e` has the
/// level's own coefficient zeroed, so it mentions outer variables only.
#[derive(Clone)]
struct LevelBounds {
    lowers: Vec<(i64, LinExpr)>,
    uppers: Vec<(i64, LinExpr)>,
}

impl LevelBounds {
    /// The `[lo, hi]` range of the level's variable given the outer prefix;
    /// `None` on a side with no finite bound.
    fn range_at(&self, prefix: &[i64]) -> (Option<i64>, Option<i64>) {
        let mut lo: Option<i64> = None;
        for (a, e) in &self.lowers {
            let v = ceil_div(-e.eval_prefix(prefix), *a);
            lo = Some(lo.map_or(v, |cur| cur.max(v)));
        }
        let mut hi: Option<i64> = None;
        for (a, e) in &self.uppers {
            let v = floor_div(e.eval_prefix(prefix), *a);
            hi = Some(hi.map_or(v, |cur| cur.min(v)));
        }
        (lo, hi)
    }

    /// The range when every bound is a constant expression, else `None`.
    fn const_range(&self) -> Option<(i64, i64)> {
        if self.lowers.is_empty() || self.uppers.is_empty() {
            return None;
        }
        let all_const = self
            .lowers
            .iter()
            .chain(&self.uppers)
            .all(|(_, e)| e.is_constant());
        if !all_const {
            return None;
        }
        match self.range_at(&[]) {
            (Some(lo), Some(hi)) => Some((lo, hi)),
            _ => None,
        }
    }
}

fn unbounded_panic(level: usize) -> ! {
    panic!(
        "polyhedron is unbounded in variable {level}; \
         enumeration requires bounded iteration spaces"
    )
}

impl Polyhedron {
    /// The universe over `dim` variables (no constraints).
    pub fn universe(dim: usize) -> Self {
        Polyhedron {
            dim,
            constraints: Vec::new(),
            trivially_empty: false,
            cache: QueryCache::default(),
        }
    }

    /// An explicitly empty polyhedron over `dim` variables.
    pub fn empty(dim: usize) -> Self {
        Polyhedron {
            dim,
            constraints: Vec::new(),
            trivially_empty: true,
            cache: QueryCache::default(),
        }
    }

    /// A copy of the constraint system with an empty cache — used where a
    /// clone would be mutated or consumed immediately, so carrying cached
    /// query results would be wasted work.
    fn bare(&self) -> Polyhedron {
        Polyhedron {
            dim: self.dim,
            constraints: self.constraints.clone(),
            trivially_empty: self.trivially_empty,
            cache: QueryCache::default(),
        }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The constraints currently held (normalized, deduplicated).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Whether constraint normalization has already proven this polyhedron
    /// empty. Constant-time, unlike the projection-based
    /// [`is_rationally_empty`](Self::is_rationally_empty); `false` means
    /// "not yet proven empty", not "non-empty".
    pub fn is_trivially_empty(&self) -> bool {
        self.trivially_empty
    }

    /// Adds a constraint in place. Invalidates every cached query result.
    ///
    /// # Panics
    ///
    /// Panics if `c.dim() != self.dim()`.
    pub fn add(&mut self, c: Constraint) {
        assert_eq!(c.dim(), self.dim, "constraint dimension mismatch");
        self.cache = QueryCache::default();
        let mut c = c;
        if !c.normalize() {
            self.trivially_empty = true;
            return;
        }
        if c.is_trivially_true() || self.constraints.contains(&c) {
            return;
        }
        self.constraints.push(c);
    }

    /// Builder-style [`add`](Self::add).
    #[must_use]
    pub fn with(mut self, c: Constraint) -> Self {
        self.add(c);
        self
    }

    /// Adds the rectangular bound `lo <= x_var <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.dim()`.
    #[must_use]
    pub fn with_range(self, var: usize, lo: i64, hi: i64) -> Self {
        let x = LinExpr::var(self.dim, var);
        self.with(Constraint::geq_zero(x.plus_const(-lo)))
            .with(Constraint::geq_zero(x.scaled(-1).plus_const(hi)))
    }

    /// Conjunction of two polyhedra over the same space.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.dim, other.dim, "dimension mismatch in intersect");
        let mut out = self.clone();
        if other.trivially_empty {
            out.trivially_empty = true;
            out.cache = QueryCache::default();
        }
        for c in &other.constraints {
            out.add(c.clone());
        }
        out
    }

    /// Whether `point` satisfies every constraint.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn contains(&self, point: &[i64]) -> bool {
        !self.trivially_empty && self.constraints.iter().all(|c| c.holds_at(point))
    }

    /// Fourier–Motzkin elimination of variable `var`. The result is a
    /// (rational, integer-tightened) projection: every integer point of
    /// `self` maps to a point of the result with `var` dropped; the result
    /// may include extra points that have no integer preimage.
    ///
    /// The resulting polyhedron lives in the same `dim`-variable space with
    /// a zero coefficient for `var` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.dim()`.
    #[must_use]
    pub fn eliminate(&self, var: usize) -> Polyhedron {
        assert!(var < self.dim, "variable out of range in eliminate");
        if self.trivially_empty {
            return Polyhedron::empty(self.dim);
        }
        // Fast path: an equality with a ±1 coefficient lets us substitute.
        if let Some(pos) = self
            .constraints
            .iter()
            .position(|c| c.relation() == Relation::EqZero && c.expr().coeff(var).abs() == 1)
        {
            let eqc = self.constraints[pos].clone();
            let a = eqc.expr().coeff(var);
            // a*x + e == 0  =>  x == -e/a; for a = ±1, x = -a*e.
            let mut rest = eqc.expr().clone();
            rest.set_coeff(var, 0);
            let replacement = rest.scaled(-a);
            let mut out = Polyhedron::universe(self.dim);
            for (i, c) in self.constraints.iter().enumerate() {
                if i == pos {
                    continue;
                }
                out.add(c.substitute(var, &replacement));
            }
            return out;
        }

        let mut lowers: Vec<Constraint> = Vec::new();
        let mut uppers: Vec<Constraint> = Vec::new();
        let mut out = Polyhedron::universe(self.dim);
        for c in &self.constraints {
            for ineq in c.as_inequalities() {
                let a = ineq.expr().coeff(var);
                if a == 0 {
                    out.add(ineq);
                } else if a > 0 {
                    lowers.push(ineq);
                } else {
                    uppers.push(ineq);
                }
            }
        }
        for lo in &lowers {
            let la = lo.expr().coeff(var);
            for up in &uppers {
                let ua = -up.expr().coeff(var);
                debug_assert!(la > 0 && ua > 0);
                let (mlo, mup) = reduce_pair(ua, la);
                // mlo * lo + mup * up cancels the var coefficient.
                let combined = lo.expr().scaled(mlo).plus(&up.expr().scaled(mup));
                debug_assert_eq!(combined.coeff(var), 0);
                out.add(Constraint::geq_zero(combined));
            }
        }
        out
    }

    /// Projects away all variables with index `>= keep`, leaving constraints
    /// that mention only the first `keep` variables.
    #[must_use]
    pub fn project_onto_prefix(&self, keep: usize) -> Polyhedron {
        let mut p = self.bare();
        for v in (keep..self.dim).rev() {
            p = p.eliminate(v);
        }
        p
    }

    /// For the triangular scan: constraints of the `level`-th projection
    /// (variables `level+1..` eliminated) that mention variable `level`,
    /// split into lower/upper bound inequalities on that variable.
    pub(crate) fn level_bounds(&self, level: usize) -> (Vec<Constraint>, Vec<Constraint>) {
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        for c in &self.constraints {
            for ineq in c.as_inequalities() {
                let a = ineq.expr().coeff(level);
                if a > 0 {
                    lowers.push(ineq);
                } else if a < 0 {
                    uppers.push(ineq);
                }
            }
        }
        (lowers, uppers)
    }

    /// The chain of projections used for scanning: element `k` is the
    /// polyhedron with variables `k+1..dim` eliminated. Computed lazily,
    /// once; subsequent calls borrow the cached chain.
    pub(crate) fn projection_chain(&self) -> &[Polyhedron] {
        &self.scan_data().chain
    }

    /// The cached scan data, building it on first use.
    fn scan_data(&self) -> &ScanData {
        self.cache.scan.get_or_init(|| self.build_scan_data())
    }

    fn build_scan_data(&self) -> ScanData {
        let mut chain: Vec<Polyhedron>;
        if self.dim == 0 {
            chain = vec![self.bare()];
        } else {
            chain = vec![Polyhedron::universe(self.dim); self.dim];
            let mut cur = self.bare();
            for k in (0..self.dim).rev() {
                chain[k] = cur.clone();
                if k > 0 {
                    cur = cur.eliminate(k);
                }
            }
        }
        let infeasible = chain[0].trivially_empty;
        let mut levels = Vec::with_capacity(self.dim);
        for (level, projected) in chain.iter().enumerate().take(self.dim) {
            let (lower_cs, upper_cs) = projected.level_bounds(level);
            let mut lowers = Vec::with_capacity(lower_cs.len());
            for c in &lower_cs {
                // a*x + e >= 0, a > 0  =>  x >= ceil(-e / a)
                let a = c.expr().coeff(level);
                let mut e = c.expr().clone();
                e.set_coeff(level, 0);
                lowers.push((a, e));
            }
            let mut uppers = Vec::with_capacity(upper_cs.len());
            for c in &upper_cs {
                // a*x + e >= 0, a < 0  =>  x <= floor(e / -a)
                let a = c.expr().coeff(level);
                let mut e = c.expr().clone();
                e.set_coeff(level, 0);
                uppers.push((-a, e));
            }
            levels.push(LevelBounds { lowers, uppers });
        }
        let mut suffix_const: Vec<Option<u64>> = vec![None; self.dim + 1];
        suffix_const[self.dim] = Some(1);
        for k in (0..self.dim).rev() {
            let Some(tail) = suffix_const[k + 1] else {
                break;
            };
            let Some((lo, hi)) = levels[k].const_range() else {
                break;
            };
            let width = (hi as i128) - (lo as i128) + 1;
            let width = if width <= 0 {
                Some(0u64)
            } else {
                u64::try_from(width).ok()
            };
            suffix_const[k] = width.and_then(|w| w.checked_mul(tail));
            if suffix_const[k].is_none() {
                break;
            }
        }
        ScanData {
            chain,
            levels,
            infeasible,
            suffix_const,
        }
    }

    /// Finds one integer point, or `None` if the polyhedron is empty. This
    /// is the lexicographic minimum; the verdict is cached.
    ///
    /// # Panics
    ///
    /// Panics if some variable is unbounded (no finite lower or upper bound
    /// after projection) while a point search would need to scan it.
    pub fn find_point(&self) -> Option<Vec<i64>> {
        self.lexmin_cached().clone()
    }

    fn lexmin_cached(&self) -> &Option<Vec<i64>> {
        self.cache.lexmin.get_or_init(|| {
            let mut found = None;
            self.scan_impl(&mut |p| {
                found = Some(p.to_vec());
                false
            });
            found
        })
    }

    /// Whether the polyhedron contains no integer point. Cached.
    pub fn is_empty(&self) -> bool {
        self.lexmin_cached().is_none()
    }

    /// A cheap, conservative emptiness test that never enumerates points:
    /// runs Fourier–Motzkin elimination over all variables and reports
    /// `true` only when a contradiction is derived. Returns `false` for
    /// sets that are rationally non-empty (even if they might contain no
    /// integer point). Total even on unbounded polyhedra, unlike
    /// [`is_empty`](Self::is_empty). Cached.
    pub fn is_rationally_empty(&self) -> bool {
        *self.cache.rat_empty.get_or_init(|| {
            if self.trivially_empty {
                return true;
            }
            let mut cur = self.bare();
            for v in 0..self.dim {
                cur = cur.eliminate(v);
                if cur.trivially_empty {
                    return true;
                }
            }
            false
        })
    }

    /// Calls `f` for every integer point, in lexicographic order of the
    /// variable tuple.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron is unbounded.
    pub fn enumerate<F: FnMut(&[i64])>(&self, mut f: F) {
        self.scan_impl(&mut |p| {
            f(p);
            true
        });
    }

    /// Number of integer points. Cached, and answered in closed form when
    /// the projection chain allows it:
    ///
    /// * all level bounds constant (rectangular spaces) — product of the
    ///   per-level interval widths;
    /// * a level whose inner neighbour has unit-coefficient affine bounds
    ///   and constant everything deeper — telescoped arithmetic-series
    ///   summation per affine segment (triangular and stripe-congruence
    ///   spaces);
    /// * otherwise — recursion over the level's range, with the innermost
    ///   level always counted as `hi - lo + 1` without visiting points.
    ///
    /// Every closed form evaluates exactly the same per-level `ceil`/`floor`
    /// bounds the scan uses, so the result always equals
    /// [`count_points_enumerated`](Self::count_points_enumerated).
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron is unbounded.
    pub fn count_points(&self) -> u64 {
        *self.cache.count.get_or_init(|| {
            let _prof = dpm_prof::scope("poly_count");
            self.count_impl()
        })
    }

    /// Number of integer points by exhaustive scan — the pre-closed-form
    /// baseline, kept public for benchmarking and equivalence tests.
    /// Not cached.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron is unbounded.
    pub fn count_points_enumerated(&self) -> u64 {
        let mut n = 0u64;
        self.enumerate(|_| n += 1);
        n
    }

    fn count_impl(&self) -> u64 {
        if self.trivially_empty {
            return 0;
        }
        if self.dim == 0 {
            return u64::from(self.constraints.iter().all(|c| c.holds_at(&[])));
        }
        let data = self.scan_data();
        if data.infeasible {
            return 0;
        }
        let mut prefix = Vec::with_capacity(self.dim);
        self.count_suffix(data, 0, &mut prefix)
    }

    /// Counts the points of levels `level..dim` beneath the fixed outer
    /// `prefix`, preferring closed forms over recursion (see
    /// [`count_points`](Self::count_points)).
    fn count_suffix(&self, data: &ScanData, level: usize, prefix: &mut Vec<i64>) -> u64 {
        if let Some(n) = data.suffix_const[level] {
            return n;
        }
        let (lo, hi) = match data.levels[level].range_at(prefix) {
            (Some(l), Some(h)) => (l, h),
            _ => unbounded_panic(level),
        };
        if lo > hi {
            return 0;
        }
        if level + 1 == self.dim {
            let width = (hi as i128) - (lo as i128) + 1;
            return u64::try_from(width).unwrap_or(u64::MAX);
        }
        if let Some(n) = self.telescope(data, level, prefix, lo, hi) {
            return n;
        }
        let mut n = 0u64;
        for x in lo..=hi {
            prefix.push(x);
            n = n.saturating_add(self.count_suffix(data, level + 1, prefix));
            prefix.pop();
        }
        n
    }

    /// Closed-form sum over `x = lo..=hi` of the point count of levels
    /// `level+1..`, applicable when the next level's bounds all have unit
    /// divisors (so, with the prefix fixed, each is affine in `x`) and
    /// everything deeper is constant. The next level's width is then
    /// piecewise affine in `x`; the segments between bound crossings each
    /// sum as an arithmetic series. Returns `None` when the shape doesn't
    /// apply (the caller falls back to recursion).
    fn telescope(
        &self,
        data: &ScanData,
        level: usize,
        prefix: &mut Vec<i64>,
        lo: i64,
        hi: i64,
    ) -> Option<u64> {
        let next = level + 1;
        let tail = data.suffix_const[next + 1]?;
        let lb = &data.levels[next];
        if lb.lowers.is_empty() || lb.uppers.is_empty() {
            return None; // unbounded: let the recursive path raise the panic
        }
        if lb.lowers.len() + lb.uppers.len() > 16 || hi == i64::MAX {
            return None;
        }
        if lb.lowers.iter().chain(&lb.uppers).any(|(a, _)| *a != 1) {
            return None;
        }
        // With the prefix fixed, each bound expression is affine in x:
        // e(prefix, x) = c*x + k. Lower entries give y >= c*x + k, upper
        // entries y <= c*x + k.
        prefix.push(0);
        let lows: Vec<(i64, i64)> = lb
            .lowers
            .iter()
            .map(|(_, e)| (-e.coeff(level), -e.eval_prefix(prefix)))
            .collect();
        let ups: Vec<(i64, i64)> = lb
            .uppers
            .iter()
            .map(|(_, e)| (e.coeff(level), e.eval_prefix(prefix)))
            .collect();
        prefix.pop();
        // Segment starts: wherever two bound lines (or the zero-width line)
        // cross, the active max/min pair or the width's sign may change.
        let mut cuts: Vec<i64> = vec![lo];
        {
            let mut cross = |(c1, k1): (i64, i64), (c2, k2): (i64, i64)| {
                if c1 == c2 {
                    return;
                }
                // c1*x + k1 == c2*x + k2 at x = (k2 - k1) / (c1 - c2).
                let (mut num, mut den) = ((k2 as i128) - (k1 as i128), (c1 as i128) - (c2 as i128));
                if den < 0 {
                    num = -num;
                    den = -den;
                }
                let x0 = num.div_euclid(den);
                for cand in [x0, x0 + 1] {
                    if let Ok(c) = i64::try_from(cand) {
                        if c > lo && c <= hi {
                            cuts.push(c);
                        }
                    }
                }
            };
            for i in 0..lows.len() {
                for j in (i + 1)..lows.len() {
                    cross(lows[i], lows[j]);
                }
            }
            for i in 0..ups.len() {
                for j in (i + 1)..ups.len() {
                    cross(ups[i], ups[j]);
                }
            }
            for &l in &lows {
                for &u in &ups {
                    cross(l, u);
                    // Width-zero line: u(x) == l(x) - 1.
                    cross((l.0, l.1 - 1), u);
                }
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        cuts.push(hi + 1);
        let eval = |(c, k): (i64, i64), x: i64| (c as i128) * (x as i128) + (k as i128);
        let mut total: u128 = 0;
        for w in cuts.windows(2) {
            let (a, b) = (w[0], w[1] - 1);
            if a > b {
                continue;
            }
            // The active (max) lower and (min) upper must be one affine
            // each across the whole segment; the crossings above guarantee
            // it, and we verify at the far endpoint to stay safe.
            let l_act = *lows
                .iter()
                .max_by_key(|&&f| eval(f, a))
                .expect("non-empty lowers");
            if lows.iter().any(|&f| eval(f, b) > eval(l_act, b)) {
                return None;
            }
            let u_act = *ups
                .iter()
                .min_by_key(|&&f| eval(f, a))
                .expect("non-empty uppers");
            if ups.iter().any(|&f| eval(f, b) < eval(u_act, b)) {
                return None;
            }
            // width(x) = u(x) - l(x) + 1, affine and sign-stable here.
            let wa = eval(u_act, a) - eval(l_act, a) + 1;
            let wb = eval(u_act, b) - eval(l_act, b) + 1;
            if wa <= 0 && wb <= 0 {
                continue;
            }
            if wa < 0 || wb < 0 {
                return None; // sign change the cuts missed: fall back
            }
            // Arithmetic series: width is affine, so the sum over the
            // segment is (wa + wb) * n / 2.
            let n = (b as i128) - (a as i128) + 1;
            let series = (wa + wb).checked_mul(n)? / 2;
            let series = u128::try_from(series).ok()?;
            total = total.checked_add((tail as u128).checked_mul(series)?)?;
        }
        u64::try_from(total).ok()
    }

    /// Core scanner; `f` returns `false` to stop early. Returns `false` if
    /// stopped early.
    fn scan_impl(&self, f: &mut dyn FnMut(&[i64]) -> bool) -> bool {
        if self.trivially_empty {
            return true;
        }
        if self.dim == 0 {
            if self.constraints.iter().all(|c| c.holds_at(&[])) {
                return f(&[]);
            }
            return true;
        }
        let data = self.scan_data();
        // Quick rational infeasibility check at level 0.
        if data.infeasible {
            return true;
        }
        let mut point = vec![0i64; self.dim];
        self.scan_rec(data, 0, &mut point, f)
    }

    fn scan_rec(
        &self,
        data: &ScanData,
        level: usize,
        point: &mut Vec<i64>,
        f: &mut dyn FnMut(&[i64]) -> bool,
    ) -> bool {
        let (lo, hi) = match data.levels[level].range_at(&point[..level]) {
            (Some(l), Some(h)) => (l, h),
            _ => unbounded_panic(level),
        };
        for x in lo..=hi {
            point[level] = x;
            if level + 1 == self.dim {
                if self.contains(point) && !f(point) {
                    return false;
                }
            } else if !self.scan_rec(data, level + 1, point, f) {
                return false;
            }
        }
        true
    }

    /// Removes redundant constraints: a constraint implied by the others
    /// (its negation intersected with the rest is infeasible by the cheap
    /// rational test) is dropped. The point set is unchanged; the
    /// representation — and any loop nest generated from it — gets smaller.
    #[must_use]
    pub fn simplified(&self) -> Polyhedron {
        if self.trivially_empty {
            return self.bare();
        }
        let mut kept: Vec<Constraint> = self.constraints.clone();
        let mut i = 0;
        while i < kept.len() {
            // Candidate for removal: check whether the remaining
            // constraints force it.
            let candidate = kept[i].clone();
            let mut rest = Polyhedron::universe(self.dim);
            for (j, c) in kept.iter().enumerate() {
                if j != i {
                    rest.add(c.clone());
                }
            }
            let implied = candidate
                .negations()
                .iter()
                .all(|neg| rest.clone().with(neg.clone()).is_rationally_empty());
            if implied {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        let mut out = Polyhedron::universe(self.dim);
        for c in kept {
            out.add(c);
        }
        out
    }

    /// The lexicographically smallest integer point, or `None` when empty.
    /// Cached.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron is unbounded (see [`Self::enumerate`]).
    pub fn lexmin(&self) -> Option<Vec<i64>> {
        self.find_point()
    }

    /// The lexicographically largest integer point, or `None` when empty.
    /// Cached.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron is unbounded.
    pub fn lexmax(&self) -> Option<Vec<i64>> {
        self.cache
            .lexmax
            .get_or_init(|| {
                if self.trivially_empty {
                    return None;
                }
                // Mirror the space (x → −x) and take the lexmin of the image.
                let mut mirrored = Polyhedron::universe(self.dim);
                for c in &self.constraints {
                    let mut e = c.expr().clone();
                    let flipped: Vec<i64> = e.coeffs().iter().map(|&a| -a).collect();
                    e = crate::expr::LinExpr::from_parts(flipped, e.constant_term());
                    mirrored.add(match c.relation() {
                        crate::constraint::Relation::GeqZero => Constraint::geq_zero(e),
                        crate::constraint::Relation::EqZero => Constraint::eq_zero(e),
                    });
                }
                mirrored
                    .find_point()
                    .map(|p| p.into_iter().map(|x| -x).collect())
            })
            .clone()
    }

    /// Per-variable constant bounds `[lo, hi]`, or `None` if the polyhedron
    /// is rationally empty at the top projection. Unbounded directions are
    /// reported as `None` entries. Cached.
    pub fn bounding_box(&self) -> Vec<(Option<i64>, Option<i64>)> {
        self.cache
            .bbox
            .get_or_init(|| {
                let mut out = Vec::with_capacity(self.dim);
                for v in 0..self.dim {
                    let mut p = self.bare();
                    for u in 0..self.dim {
                        if u != v {
                            p = p.eliminate(u);
                        }
                    }
                    let (lowers, uppers) = p.level_bounds(v);
                    let lo = lowers
                        .iter()
                        .map(|c| {
                            let a = c.expr().coeff(v);
                            ceil_div(-c.expr().constant_term(), a)
                        })
                        .max();
                    let hi = uppers
                        .iter()
                        .map(|c| {
                            let a = c.expr().coeff(v);
                            floor_div(c.expr().constant_term(), -a)
                        })
                        .min();
                    out.push((lo, hi));
                }
                out
            })
            .clone()
    }

    /// Renders the polyhedron with the given variable names.
    pub fn display_with(&self, names: &[&str]) -> String {
        if self.trivially_empty {
            return "{ false }".to_string();
        }
        if self.constraints.is_empty() {
            return "{ true }".to_string();
        }
        let parts: Vec<String> = self
            .constraints
            .iter()
            .map(|c| c.display_with(names))
            .collect();
        format!("{{ {} }}", parts.join(" and "))
    }
}

impl Clone for Polyhedron {
    fn clone(&self) -> Self {
        Polyhedron {
            dim: self.dim,
            constraints: self.constraints.clone(),
            trivially_empty: self.trivially_empty,
            cache: self.cache.clone(),
        }
    }
}

/// Equality of the constraint *system* (dimension, constraint list, proven
/// emptiness). Cached query results are ignored: two polyhedra compare
/// equal whether or not their caches are populated.
impl PartialEq for Polyhedron {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim
            && self.trivially_empty == other.trivially_empty
            && self.constraints == other.constraints
    }
}

impl Eq for Polyhedron {}

impl fmt::Debug for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.dim).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        write!(f, "{}", self.display_with(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(dim: usize, bounds: &[(i64, i64)]) -> Polyhedron {
        let mut p = Polyhedron::universe(dim);
        for (v, &(lo, hi)) in bounds.iter().enumerate() {
            p = p.with_range(v, lo, hi);
        }
        p
    }

    #[test]
    fn rectangle_count() {
        let p = rect(2, &[(0, 3), (1, 2)]);
        assert_eq!(p.count_points(), 4 * 2);
        assert!(p.contains(&[0, 1]));
        assert!(!p.contains(&[0, 0]));
        assert!(!p.contains(&[4, 1]));
    }

    #[test]
    fn triangle_count() {
        // 0 <= i <= 9, 0 <= j <= i
        let p = rect(2, &[(0, 9), (0, 9)]).with(Constraint::geq_zero(
            LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
        ));
        assert_eq!(p.count_points(), (1..=10).sum::<i64>() as u64);
    }

    #[test]
    fn empty_by_contradiction() {
        let p = rect(1, &[(0, 5)]).with(Constraint::geq_zero(LinExpr::var(1, 0).plus_const(-10)));
        assert!(p.is_empty());
        assert_eq!(p.count_points(), 0);
    }

    #[test]
    fn empty_by_parity_equality() {
        // 2x == 1 within 0..10
        let p = rect(1, &[(0, 10)]).with(Constraint::eq_zero(LinExpr::from_parts(vec![2], -1)));
        assert!(p.is_empty());
    }

    #[test]
    fn equality_substitution_elimination() {
        // { (i, j) | j == i + 1, 0 <= i <= 4 }: eliminating j keeps i range.
        let p = rect(2, &[(0, 4), (-100, 100)]).with(Constraint::eq(
            &LinExpr::var(2, 1),
            &LinExpr::var(2, 0).plus_const(1),
        ));
        assert_eq!(p.count_points(), 5);
        let q = p.eliminate(1);
        // After elimination, j unconstrained; points of q over i must be 0..4.
        let proj = q.project_onto_prefix(1);
        let (lowers, uppers) = proj.level_bounds(0);
        assert!(!lowers.is_empty() && !uppers.is_empty());
    }

    #[test]
    fn fm_projection_soundness() {
        // Diagonal strip: 0 <= i, j <= 9, |i - j| <= 1.
        let p = rect(2, &[(0, 9), (0, 9)])
            .with(Constraint::geq_zero(
                LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)).plus_const(1),
            ))
            .with(Constraint::geq_zero(
                LinExpr::var(2, 1).minus(&LinExpr::var(2, 0)).plus_const(1),
            ));
        let proj = p.project_onto_prefix(1);
        // Every i in 0..=9 has a j; projection must contain exactly those.
        for i in 0..=9 {
            assert!(proj.contains(&[i, 0]) || proj.contains(&[i, 9]), "i={i}");
        }
        let mut count = 0;
        p.enumerate(|_| count += 1);
        assert_eq!(count, 10 + 9 + 9);
        assert_eq!(p.count_points(), 28);
    }

    #[test]
    fn lexicographic_enumeration_order() {
        let p = rect(2, &[(0, 1), (0, 1)]);
        let mut pts = Vec::new();
        p.enumerate(|q| pts.push(q.to_vec()));
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn scaled_coefficient_bounds() {
        // { x | 0 <= 3x <= 10 } = {0, 1, 2, 3}
        let p = Polyhedron::universe(1)
            .with(Constraint::geq_zero(LinExpr::from_parts(vec![3], 0)))
            .with(Constraint::geq_zero(LinExpr::from_parts(vec![-3], 10)));
        assert_eq!(p.count_points(), 4);
    }

    #[test]
    fn bounding_box() {
        let p = rect(2, &[(2, 7), (-3, 3)]);
        let bb = p.bounding_box();
        assert_eq!(bb[0], (Some(2), Some(7)));
        assert_eq!(bb[1], (Some(-3), Some(3)));
    }

    #[test]
    fn simplified_drops_redundant_constraints() {
        // x >= 0 is implied by x >= 5; x <= 100 implied by x <= 10.
        let p = Polyhedron::universe(1)
            .with_range(0, 0, 100)
            .with_range(0, 5, 10);
        let q = p.simplified();
        assert_eq!(q.constraints().len(), 2);
        // Same point set.
        let mut a = Vec::new();
        p.enumerate(|x| a.push(x.to_vec()));
        let mut b = Vec::new();
        q.enumerate(|x| b.push(x.to_vec()));
        assert_eq!(a, b);
        // Nothing to drop in an irredundant system.
        let tri = Polyhedron::universe(2)
            .with_range(0, 0, 4)
            .with_range(1, 0, 4)
            .with(Constraint::geq_zero(
                LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
            ));
        // j >= 0 is *not* redundant; j <= 4 is (implied by j <= i <= 4).
        let st = tri.simplified();
        assert_eq!(st.count_points(), tri.count_points());
        assert!(st.constraints().len() < tri.constraints().len());
    }

    #[test]
    fn lexmin_lexmax() {
        let p = rect(2, &[(2, 7), (-3, 3)]).with(Constraint::geq_zero(
            LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
        ));
        assert_eq!(p.lexmin(), Some(vec![2, -3]));
        assert_eq!(p.lexmax(), Some(vec![7, 3]));
        let empty = rect(1, &[(5, 2)]);
        assert_eq!(empty.lexmin(), None);
        assert_eq!(empty.lexmax(), None);
        // Triangle: lexmax of { 0<=i<=4, 0<=j<=i } is (4,4).
        let t = rect(2, &[(0, 4), (0, 9)]).with(Constraint::geq_zero(
            LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
        ));
        assert_eq!(t.lexmax(), Some(vec![4, 4]));
    }

    #[test]
    fn zero_dim_polyhedron() {
        let p = Polyhedron::universe(0);
        assert_eq!(p.count_points(), 1);
        assert!(Polyhedron::empty(0).is_empty());
    }

    #[test]
    fn intersect_of_disjoint_is_empty() {
        let a = rect(1, &[(0, 3)]);
        let b = rect(1, &[(5, 9)]);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn stripe_congruence_via_aux_var() {
        // Iterations i in 0..16 whose block i div 4 is congruent to 1 mod 2,
        // encoded with an auxiliary q: i in [ (2q+1)*4, (2q+1)*4 + 3 ].
        // Space: (q, i).
        let q = LinExpr::var(2, 0);
        let i = LinExpr::var(2, 1);
        let blk_lo = q.scaled(8).plus_const(4);
        let p = Polyhedron::universe(2)
            .with_range(1, 0, 15)
            .with(Constraint::geq(&i, &blk_lo))
            .with(Constraint::leq(&i, &blk_lo.plus_const(3)))
            .with_range(0, 0, 1);
        let mut is = Vec::new();
        p.enumerate(|pt| is.push(pt[1]));
        assert_eq!(is, vec![4, 5, 6, 7, 12, 13, 14, 15]);
        // Closed-form count agrees with the enumeration.
        assert_eq!(p.count_points(), 8);
        assert_eq!(p.count_points_enumerated(), 8);
    }

    #[test]
    fn closed_form_matches_enumeration() {
        // Rectangular: pure product of widths.
        let r = rect(3, &[(0, 11), (-2, 2), (5, 9)]);
        assert_eq!(r.count_points(), r.count_points_enumerated());
        assert_eq!(r.count_points(), 12 * 5 * 5);
        // Triangular: telescoped series.
        let t = rect(2, &[(0, 63), (0, 63)]).with(Constraint::geq_zero(
            LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
        ));
        assert_eq!(t.count_points(), t.count_points_enumerated());
        // Band |i - j| <= 2: two affine bounds per side.
        let band = rect(2, &[(0, 20), (0, 20)])
            .with(Constraint::geq_zero(
                LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)).plus_const(2),
            ))
            .with(Constraint::geq_zero(
                LinExpr::var(2, 1).minus(&LinExpr::var(2, 0)).plus_const(2),
            ));
        assert_eq!(band.count_points(), band.count_points_enumerated());
        // 3-D with a mixed middle level: recursion + inner closed forms.
        let mixed = rect(3, &[(0, 9), (0, 9), (0, 9)]).with(Constraint::geq_zero(
            LinExpr::var(3, 0)
                .plus(&LinExpr::var(3, 1))
                .minus(&LinExpr::var(3, 2)),
        ));
        assert_eq!(mixed.count_points(), mixed.count_points_enumerated());
    }

    #[test]
    fn cache_invalidated_on_add() {
        let mut p = rect(2, &[(0, 9), (0, 9)]);
        assert_eq!(p.count_points(), 100);
        assert!(!p.is_empty());
        assert_eq!(p.lexmax(), Some(vec![9, 9]));
        // Mutate: every cached answer must be recomputed.
        p.add(Constraint::geq_zero(
            LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
        ));
        assert_eq!(p.count_points(), 55);
        assert_eq!(p.lexmax(), Some(vec![9, 9]));
        assert_eq!(p.lexmin(), Some(vec![0, 0]));
        p.add(Constraint::geq_zero(LinExpr::var(2, 1).plus_const(-100)));
        assert!(p.is_empty());
        assert_eq!(p.count_points(), 0);
    }

    #[test]
    fn clone_and_equality_ignore_cache() {
        let p = rect(2, &[(0, 4), (0, 4)]);
        let warmed = p.clone();
        assert_eq!(warmed.count_points(), 25); // populate the clone's cache
        assert_eq!(p, warmed);
        let fresh = rect(2, &[(0, 4), (0, 4)]);
        assert_eq!(fresh, warmed);
        // A cloned cache still answers correctly after warming the source.
        let q = warmed.clone();
        assert_eq!(q.count_points(), 25);
        assert_eq!(q.lexmin(), Some(vec![0, 0]));
    }
}
