//! Convex integer polyhedra: conjunctions of affine constraints, with
//! Fourier–Motzkin projection, exact integer point enumeration, and
//! emptiness testing.

use crate::constraint::{reduce_pair, Constraint, Relation};
use crate::expr::{ceil_div, floor_div, LinExpr};
use std::fmt;

/// A conjunction of affine constraints over `dim` integer variables.
///
/// The empty conjunction is the universe. A polyhedron whose constraints are
/// mutually unsatisfiable over the integers is *empty*; emptiness is decided
/// exactly by [`Polyhedron::find_point`] as long as every variable is
/// bounded (which is always the case for loop iteration spaces).
///
/// # Examples
///
/// ```
/// use dpm_poly::{Polyhedron, Constraint, LinExpr};
/// // { (i, j) | 0 <= i <= 3, 0 <= j <= i }
/// let p = Polyhedron::universe(2)
///     .with(Constraint::geq_zero(LinExpr::var(2, 0)))
///     .with(Constraint::geq_zero(LinExpr::var(2, 0).scaled(-1).plus_const(3)))
///     .with(Constraint::geq_zero(LinExpr::var(2, 1)))
///     .with(Constraint::geq_zero(LinExpr::var(2, 0).minus(&LinExpr::var(2, 1))));
/// assert_eq!(p.count_points(), 4 + 3 + 2 + 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Polyhedron {
    dim: usize,
    constraints: Vec<Constraint>,
    /// Set when constraint normalization proves unsatisfiability.
    trivially_empty: bool,
}

impl Polyhedron {
    /// The universe over `dim` variables (no constraints).
    pub fn universe(dim: usize) -> Self {
        Polyhedron {
            dim,
            constraints: Vec::new(),
            trivially_empty: false,
        }
    }

    /// An explicitly empty polyhedron over `dim` variables.
    pub fn empty(dim: usize) -> Self {
        Polyhedron {
            dim,
            constraints: Vec::new(),
            trivially_empty: true,
        }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The constraints currently held (normalized, deduplicated).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Whether constraint normalization has already proven this polyhedron
    /// empty. Constant-time, unlike the projection-based
    /// [`is_rationally_empty`](Self::is_rationally_empty); `false` means
    /// "not yet proven empty", not "non-empty".
    pub fn is_trivially_empty(&self) -> bool {
        self.trivially_empty
    }

    /// Adds a constraint in place.
    ///
    /// # Panics
    ///
    /// Panics if `c.dim() != self.dim()`.
    pub fn add(&mut self, c: Constraint) {
        assert_eq!(c.dim(), self.dim, "constraint dimension mismatch");
        let mut c = c;
        if !c.normalize() {
            self.trivially_empty = true;
            return;
        }
        if c.is_trivially_true() || self.constraints.contains(&c) {
            return;
        }
        self.constraints.push(c);
    }

    /// Builder-style [`add`](Self::add).
    #[must_use]
    pub fn with(mut self, c: Constraint) -> Self {
        self.add(c);
        self
    }

    /// Adds the rectangular bound `lo <= x_var <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.dim()`.
    #[must_use]
    pub fn with_range(self, var: usize, lo: i64, hi: i64) -> Self {
        let x = LinExpr::var(self.dim, var);
        self.with(Constraint::geq_zero(x.plus_const(-lo)))
            .with(Constraint::geq_zero(x.scaled(-1).plus_const(hi)))
    }

    /// Conjunction of two polyhedra over the same space.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.dim, other.dim, "dimension mismatch in intersect");
        let mut out = self.clone();
        if other.trivially_empty {
            out.trivially_empty = true;
        }
        for c in &other.constraints {
            out.add(c.clone());
        }
        out
    }

    /// Whether `point` satisfies every constraint.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn contains(&self, point: &[i64]) -> bool {
        !self.trivially_empty && self.constraints.iter().all(|c| c.holds_at(point))
    }

    /// Fourier–Motzkin elimination of variable `var`. The result is a
    /// (rational, integer-tightened) projection: every integer point of
    /// `self` maps to a point of the result with `var` dropped; the result
    /// may include extra points that have no integer preimage.
    ///
    /// The resulting polyhedron lives in the same `dim`-variable space with
    /// a zero coefficient for `var` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.dim()`.
    #[must_use]
    pub fn eliminate(&self, var: usize) -> Polyhedron {
        assert!(var < self.dim, "variable out of range in eliminate");
        if self.trivially_empty {
            return Polyhedron::empty(self.dim);
        }
        // Fast path: an equality with a ±1 coefficient lets us substitute.
        if let Some(pos) = self
            .constraints
            .iter()
            .position(|c| c.relation() == Relation::EqZero && c.expr().coeff(var).abs() == 1)
        {
            let eqc = self.constraints[pos].clone();
            let a = eqc.expr().coeff(var);
            // a*x + e == 0  =>  x == -e/a; for a = ±1, x = -a*e.
            let mut rest = eqc.expr().clone();
            rest.set_coeff(var, 0);
            let replacement = rest.scaled(-a);
            let mut out = Polyhedron::universe(self.dim);
            for (i, c) in self.constraints.iter().enumerate() {
                if i == pos {
                    continue;
                }
                out.add(c.substitute(var, &replacement));
            }
            return out;
        }

        let mut lowers: Vec<Constraint> = Vec::new();
        let mut uppers: Vec<Constraint> = Vec::new();
        let mut out = Polyhedron::universe(self.dim);
        for c in &self.constraints {
            for ineq in c.as_inequalities() {
                let a = ineq.expr().coeff(var);
                if a == 0 {
                    out.add(ineq);
                } else if a > 0 {
                    lowers.push(ineq);
                } else {
                    uppers.push(ineq);
                }
            }
        }
        for lo in &lowers {
            let la = lo.expr().coeff(var);
            for up in &uppers {
                let ua = -up.expr().coeff(var);
                debug_assert!(la > 0 && ua > 0);
                let (mlo, mup) = reduce_pair(ua, la);
                // mlo * lo + mup * up cancels the var coefficient.
                let combined = lo.expr().scaled(mlo).plus(&up.expr().scaled(mup));
                debug_assert_eq!(combined.coeff(var), 0);
                out.add(Constraint::geq_zero(combined));
            }
        }
        out
    }

    /// Projects away all variables with index `>= keep`, leaving constraints
    /// that mention only the first `keep` variables.
    #[must_use]
    pub fn project_onto_prefix(&self, keep: usize) -> Polyhedron {
        let mut p = self.clone();
        for v in (keep..self.dim).rev() {
            p = p.eliminate(v);
        }
        p
    }

    /// For the triangular scan: constraints of the `level`-th projection
    /// (variables `level+1..` eliminated) that mention variable `level`,
    /// split into lower/upper bound inequalities on that variable.
    pub(crate) fn level_bounds(&self, level: usize) -> (Vec<Constraint>, Vec<Constraint>) {
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        for c in &self.constraints {
            for ineq in c.as_inequalities() {
                let a = ineq.expr().coeff(level);
                if a > 0 {
                    lowers.push(ineq);
                } else if a < 0 {
                    uppers.push(ineq);
                }
            }
        }
        (lowers, uppers)
    }

    /// Builds the chain of projections used for scanning: element `k` is the
    /// polyhedron with variables `k+1..dim` eliminated.
    pub(crate) fn projection_chain(&self) -> Vec<Polyhedron> {
        let mut chain = vec![self.clone(); self.dim.max(1)];
        if self.dim == 0 {
            chain[0] = self.clone();
            return chain;
        }
        let mut cur = self.clone();
        for k in (0..self.dim).rev() {
            chain[k] = cur.clone();
            if k > 0 {
                cur = cur.eliminate(k);
            }
        }
        chain
    }

    /// Finds one integer point, or `None` if the polyhedron is empty.
    ///
    /// # Panics
    ///
    /// Panics if some variable is unbounded (no finite lower or upper bound
    /// after projection) while a point search would need to scan it.
    pub fn find_point(&self) -> Option<Vec<i64>> {
        let mut found = None;
        self.scan_impl(&mut |p| {
            found = Some(p.to_vec());
            false
        });
        found
    }

    /// Whether the polyhedron contains no integer point.
    pub fn is_empty(&self) -> bool {
        self.find_point().is_none()
    }

    /// A cheap, conservative emptiness test that never enumerates points:
    /// runs Fourier–Motzkin elimination over all variables and reports
    /// `true` only when a contradiction is derived. Returns `false` for
    /// sets that are rationally non-empty (even if they might contain no
    /// integer point). Total even on unbounded polyhedra, unlike
    /// [`is_empty`](Self::is_empty).
    pub fn is_rationally_empty(&self) -> bool {
        if self.trivially_empty {
            return true;
        }
        let mut cur = self.clone();
        for v in 0..self.dim {
            cur = cur.eliminate(v);
            if cur.trivially_empty {
                return true;
            }
        }
        false
    }

    /// Calls `f` for every integer point, in lexicographic order of the
    /// variable tuple.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron is unbounded.
    pub fn enumerate<F: FnMut(&[i64])>(&self, mut f: F) {
        self.scan_impl(&mut |p| {
            f(p);
            true
        });
    }

    /// Number of integer points.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron is unbounded.
    pub fn count_points(&self) -> u64 {
        let mut n = 0u64;
        self.enumerate(|_| n += 1);
        n
    }

    /// Core scanner; `f` returns `false` to stop early. Returns `false` if
    /// stopped early.
    fn scan_impl(&self, f: &mut dyn FnMut(&[i64]) -> bool) -> bool {
        if self.trivially_empty {
            return true;
        }
        if self.dim == 0 {
            if self.constraints.iter().all(|c| c.holds_at(&[])) {
                return f(&[]);
            }
            return true;
        }
        let chain = self.projection_chain();
        // Quick rational infeasibility check at level 0.
        if chain[0].trivially_empty {
            return true;
        }
        let mut point = vec![0i64; self.dim];
        self.scan_rec(&chain, 0, &mut point, f)
    }

    fn scan_rec(
        &self,
        chain: &[Polyhedron],
        level: usize,
        point: &mut Vec<i64>,
        f: &mut dyn FnMut(&[i64]) -> bool,
    ) -> bool {
        let (lowers, uppers) = chain[level].level_bounds(level);
        let prefix = &point[..level];
        let mut lo: Option<i64> = None;
        for c in &lowers {
            // a*x + e >= 0, a > 0  =>  x >= ceil(-e / a)
            let a = c.expr().coeff(level);
            let mut e = c.expr().clone();
            e.set_coeff(level, 0);
            let v = ceil_div(-e.eval_prefix(prefix), a);
            lo = Some(lo.map_or(v, |cur| cur.max(v)));
        }
        let mut hi: Option<i64> = None;
        for c in &uppers {
            // a*x + e >= 0, a < 0  =>  x <= floor(e / -a)
            let a = c.expr().coeff(level);
            let mut e = c.expr().clone();
            e.set_coeff(level, 0);
            let v = floor_div(e.eval_prefix(prefix), -a);
            hi = Some(hi.map_or(v, |cur| cur.min(v)));
        }
        let (lo, hi) = match (lo, hi) {
            (Some(l), Some(h)) => (l, h),
            _ => panic!(
                "polyhedron is unbounded in variable {level}; \
                 enumeration requires bounded iteration spaces"
            ),
        };
        for x in lo..=hi {
            point[level] = x;
            if level + 1 == self.dim {
                if self.contains(point) && !f(point) {
                    return false;
                }
            } else if !self.scan_rec(chain, level + 1, point, f) {
                return false;
            }
        }
        true
    }

    /// Removes redundant constraints: a constraint implied by the others
    /// (its negation intersected with the rest is infeasible by the cheap
    /// rational test) is dropped. The point set is unchanged; the
    /// representation — and any loop nest generated from it — gets smaller.
    #[must_use]
    pub fn simplified(&self) -> Polyhedron {
        if self.trivially_empty {
            return self.clone();
        }
        let mut kept: Vec<Constraint> = self.constraints.clone();
        let mut i = 0;
        while i < kept.len() {
            // Candidate for removal: check whether the remaining
            // constraints force it.
            let candidate = kept[i].clone();
            let mut rest = Polyhedron::universe(self.dim);
            for (j, c) in kept.iter().enumerate() {
                if j != i {
                    rest.add(c.clone());
                }
            }
            let implied = candidate
                .negations()
                .iter()
                .all(|neg| rest.clone().with(neg.clone()).is_rationally_empty());
            if implied {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        let mut out = Polyhedron::universe(self.dim);
        for c in kept {
            out.add(c);
        }
        out
    }

    /// The lexicographically smallest integer point, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron is unbounded (see [`Self::enumerate`]).
    pub fn lexmin(&self) -> Option<Vec<i64>> {
        self.find_point()
    }

    /// The lexicographically largest integer point, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if the polyhedron is unbounded.
    pub fn lexmax(&self) -> Option<Vec<i64>> {
        // Mirror the space (x → −x) and take the lexmin of the image.
        let mut mirrored = Polyhedron::universe(self.dim);
        for c in &self.constraints {
            let mut e = c.expr().clone();
            let flipped: Vec<i64> = e.coeffs().iter().map(|&a| -a).collect();
            e = crate::expr::LinExpr::from_parts(flipped, e.constant_term());
            mirrored.add(match c.relation() {
                crate::constraint::Relation::GeqZero => Constraint::geq_zero(e),
                crate::constraint::Relation::EqZero => Constraint::eq_zero(e),
            });
        }
        if self.trivially_empty {
            return None;
        }
        mirrored
            .find_point()
            .map(|p| p.into_iter().map(|x| -x).collect())
    }

    /// Per-variable constant bounds `[lo, hi]`, or `None` if the polyhedron
    /// is rationally empty at the top projection. Unbounded directions are
    /// reported as `None` entries.
    pub fn bounding_box(&self) -> Vec<(Option<i64>, Option<i64>)> {
        let mut out = Vec::with_capacity(self.dim);
        for v in 0..self.dim {
            let mut p = self.clone();
            for u in 0..self.dim {
                if u != v {
                    p = p.eliminate(u);
                }
            }
            let (lowers, uppers) = p.level_bounds(v);
            let lo = lowers
                .iter()
                .map(|c| {
                    let a = c.expr().coeff(v);
                    ceil_div(-c.expr().constant_term(), a)
                })
                .max();
            let hi = uppers
                .iter()
                .map(|c| {
                    let a = c.expr().coeff(v);
                    floor_div(c.expr().constant_term(), -a)
                })
                .min();
            out.push((lo, hi));
        }
        out
    }

    /// Renders the polyhedron with the given variable names.
    pub fn display_with(&self, names: &[&str]) -> String {
        if self.trivially_empty {
            return "{ false }".to_string();
        }
        if self.constraints.is_empty() {
            return "{ true }".to_string();
        }
        let parts: Vec<String> = self
            .constraints
            .iter()
            .map(|c| c.display_with(names))
            .collect();
        format!("{{ {} }}", parts.join(" and "))
    }
}

impl fmt::Debug for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.dim).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        write!(f, "{}", self.display_with(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(dim: usize, bounds: &[(i64, i64)]) -> Polyhedron {
        let mut p = Polyhedron::universe(dim);
        for (v, &(lo, hi)) in bounds.iter().enumerate() {
            p = p.with_range(v, lo, hi);
        }
        p
    }

    #[test]
    fn rectangle_count() {
        let p = rect(2, &[(0, 3), (1, 2)]);
        assert_eq!(p.count_points(), 4 * 2);
        assert!(p.contains(&[0, 1]));
        assert!(!p.contains(&[0, 0]));
        assert!(!p.contains(&[4, 1]));
    }

    #[test]
    fn triangle_count() {
        // 0 <= i <= 9, 0 <= j <= i
        let p = rect(2, &[(0, 9), (0, 9)]).with(Constraint::geq_zero(
            LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
        ));
        assert_eq!(p.count_points(), (1..=10).sum::<i64>() as u64);
    }

    #[test]
    fn empty_by_contradiction() {
        let p = rect(1, &[(0, 5)]).with(Constraint::geq_zero(LinExpr::var(1, 0).plus_const(-10)));
        assert!(p.is_empty());
        assert_eq!(p.count_points(), 0);
    }

    #[test]
    fn empty_by_parity_equality() {
        // 2x == 1 within 0..10
        let p = rect(1, &[(0, 10)]).with(Constraint::eq_zero(LinExpr::from_parts(vec![2], -1)));
        assert!(p.is_empty());
    }

    #[test]
    fn equality_substitution_elimination() {
        // { (i, j) | j == i + 1, 0 <= i <= 4 }: eliminating j keeps i range.
        let p = rect(2, &[(0, 4), (-100, 100)]).with(Constraint::eq(
            &LinExpr::var(2, 1),
            &LinExpr::var(2, 0).plus_const(1),
        ));
        assert_eq!(p.count_points(), 5);
        let q = p.eliminate(1);
        // After elimination, j unconstrained; points of q over i must be 0..4.
        let proj = q.project_onto_prefix(1);
        let (lowers, uppers) = proj.level_bounds(0);
        assert!(!lowers.is_empty() && !uppers.is_empty());
    }

    #[test]
    fn fm_projection_soundness() {
        // Diagonal strip: 0 <= i, j <= 9, |i - j| <= 1.
        let p = rect(2, &[(0, 9), (0, 9)])
            .with(Constraint::geq_zero(
                LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)).plus_const(1),
            ))
            .with(Constraint::geq_zero(
                LinExpr::var(2, 1).minus(&LinExpr::var(2, 0)).plus_const(1),
            ));
        let proj = p.project_onto_prefix(1);
        // Every i in 0..=9 has a j; projection must contain exactly those.
        for i in 0..=9 {
            assert!(proj.contains(&[i, 0]) || proj.contains(&[i, 9]), "i={i}");
        }
        let mut count = 0;
        p.enumerate(|_| count += 1);
        assert_eq!(count, 10 + 9 + 9);
    }

    #[test]
    fn lexicographic_enumeration_order() {
        let p = rect(2, &[(0, 1), (0, 1)]);
        let mut pts = Vec::new();
        p.enumerate(|q| pts.push(q.to_vec()));
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn scaled_coefficient_bounds() {
        // { x | 0 <= 3x <= 10 } = {0, 1, 2, 3}
        let p = Polyhedron::universe(1)
            .with(Constraint::geq_zero(LinExpr::from_parts(vec![3], 0)))
            .with(Constraint::geq_zero(LinExpr::from_parts(vec![-3], 10)));
        assert_eq!(p.count_points(), 4);
    }

    #[test]
    fn bounding_box() {
        let p = rect(2, &[(2, 7), (-3, 3)]);
        let bb = p.bounding_box();
        assert_eq!(bb[0], (Some(2), Some(7)));
        assert_eq!(bb[1], (Some(-3), Some(3)));
    }

    #[test]
    fn simplified_drops_redundant_constraints() {
        // x >= 0 is implied by x >= 5; x <= 100 implied by x <= 10.
        let p = Polyhedron::universe(1)
            .with_range(0, 0, 100)
            .with_range(0, 5, 10);
        let q = p.simplified();
        assert_eq!(q.constraints().len(), 2);
        // Same point set.
        let mut a = Vec::new();
        p.enumerate(|x| a.push(x.to_vec()));
        let mut b = Vec::new();
        q.enumerate(|x| b.push(x.to_vec()));
        assert_eq!(a, b);
        // Nothing to drop in an irredundant system.
        let tri = Polyhedron::universe(2)
            .with_range(0, 0, 4)
            .with_range(1, 0, 4)
            .with(Constraint::geq_zero(
                LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
            ));
        // j >= 0 is *not* redundant; j <= 4 is (implied by j <= i <= 4).
        let st = tri.simplified();
        assert_eq!(st.count_points(), tri.count_points());
        assert!(st.constraints().len() < tri.constraints().len());
    }

    #[test]
    fn lexmin_lexmax() {
        let p = rect(2, &[(2, 7), (-3, 3)]).with(Constraint::geq_zero(
            LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
        ));
        assert_eq!(p.lexmin(), Some(vec![2, -3]));
        assert_eq!(p.lexmax(), Some(vec![7, 3]));
        let empty = rect(1, &[(5, 2)]);
        assert_eq!(empty.lexmin(), None);
        assert_eq!(empty.lexmax(), None);
        // Triangle: lexmax of { 0<=i<=4, 0<=j<=i } is (4,4).
        let t = rect(2, &[(0, 4), (0, 9)]).with(Constraint::geq_zero(
            LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
        ));
        assert_eq!(t.lexmax(), Some(vec![4, 4]));
    }

    #[test]
    fn zero_dim_polyhedron() {
        let p = Polyhedron::universe(0);
        assert_eq!(p.count_points(), 1);
        assert!(Polyhedron::empty(0).is_empty());
    }

    #[test]
    fn intersect_of_disjoint_is_empty() {
        let a = rect(1, &[(0, 3)]);
        let b = rect(1, &[(5, 9)]);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn stripe_congruence_via_aux_var() {
        // Iterations i in 0..16 whose block i div 4 is congruent to 1 mod 2,
        // encoded with an auxiliary q: i in [ (2q+1)*4, (2q+1)*4 + 3 ].
        // Space: (q, i).
        let q = LinExpr::var(2, 0);
        let i = LinExpr::var(2, 1);
        let blk_lo = q.scaled(8).plus_const(4);
        let p = Polyhedron::universe(2)
            .with_range(1, 0, 15)
            .with(Constraint::geq(&i, &blk_lo))
            .with(Constraint::leq(&i, &blk_lo.plus_const(3)))
            .with_range(0, 0, 1);
        let mut is = Vec::new();
        p.enumerate(|pt| is.push(pt[1]));
        assert_eq!(is, vec![4, 5, 6, 7, 12, 13, 14, 15]);
    }
}
