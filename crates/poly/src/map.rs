//! Affine maps between integer spaces — the "relation" half of the Omega
//! library: apply to points, compose, and take exact images/preimages of
//! sets by embedding the graph `{(x, y) | y = M(x)}` in a product space and
//! projecting.

use crate::constraint::Constraint;
use crate::expr::LinExpr;
use crate::polyhedron::Polyhedron;
use crate::set::Set;
use std::fmt;

/// An affine map `Z^in → Z^out`: each output coordinate is an affine
/// expression over the input variables.
///
/// # Examples
///
/// ```
/// use dpm_poly::{AffineMap, LinExpr};
/// // (i, j) → (j, i + 1): a transposition with a shift.
/// let m = AffineMap::new(2, vec![
///     LinExpr::var(2, 1),
///     LinExpr::var(2, 0).plus_const(1),
/// ]);
/// assert_eq!(m.apply(&[3, 7]), vec![7, 4]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct AffineMap {
    dim_in: usize,
    outputs: Vec<LinExpr>,
}

impl AffineMap {
    /// Builds a map from its output expressions (each of dimension
    /// `dim_in`).
    ///
    /// # Panics
    ///
    /// Panics if any output's dimension differs from `dim_in`.
    pub fn new(dim_in: usize, outputs: Vec<LinExpr>) -> Self {
        for o in &outputs {
            assert_eq!(o.dim(), dim_in, "output expression dimension mismatch");
        }
        AffineMap { dim_in, outputs }
    }

    /// The identity map on `dim` variables.
    pub fn identity(dim: usize) -> Self {
        AffineMap {
            dim_in: dim,
            outputs: (0..dim).map(|v| LinExpr::var(dim, v)).collect(),
        }
    }

    /// Input arity.
    pub fn dim_in(&self) -> usize {
        self.dim_in
    }

    /// Output arity.
    pub fn dim_out(&self) -> usize {
        self.outputs.len()
    }

    /// The output expressions.
    pub fn outputs(&self) -> &[LinExpr] {
        &self.outputs
    }

    /// Applies the map to a point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim_in()`.
    pub fn apply(&self, point: &[i64]) -> Vec<i64> {
        self.outputs.iter().map(|e| e.eval(point)).collect()
    }

    /// Composition `self ∘ other` (apply `other` first).
    ///
    /// # Panics
    ///
    /// Panics if `other.dim_out() != self.dim_in()`.
    #[must_use]
    pub fn compose(&self, other: &AffineMap) -> AffineMap {
        assert_eq!(
            other.dim_out(),
            self.dim_in,
            "arity mismatch in composition"
        );
        let outputs = self
            .outputs
            .iter()
            .map(|e| {
                // Substitute each input variable of `self` with the
                // corresponding output expression of `other`.
                let mut acc = LinExpr::constant(other.dim_in, e.constant_term());
                for v in 0..self.dim_in {
                    let c = e.coeff(v);
                    if c != 0 {
                        acc = acc.plus(&other.outputs[v].scaled(c));
                    }
                }
                acc
            })
            .collect();
        AffineMap {
            dim_in: other.dim_in,
            outputs,
        }
    }

    /// The graph `{(x, y) | x ∈ domain, y = M(x)}` as a polyhedron over
    /// `dim_in + dim_out` variables (inputs first).
    pub fn graph(&self, domain: &Polyhedron) -> Polyhedron {
        assert_eq!(domain.dim(), self.dim_in, "domain dimension mismatch");
        let total = self.dim_in + self.dim_out();
        let in_map: Vec<usize> = (0..self.dim_in).collect();
        let mut g = Polyhedron::universe(total);
        for c in domain.constraints() {
            g.add(c.remap(total, &in_map));
        }
        for (k, e) in self.outputs.iter().enumerate() {
            let lifted = e.remap(total, &in_map);
            let y = LinExpr::var(total, self.dim_in + k);
            g.add(Constraint::eq(&y, &lifted));
        }
        g
    }

    /// Exact image of a set: `{ M(x) | x ∈ s }`.
    ///
    /// Computed by enumerating the (bounded) set — exact, and sufficient
    /// for iteration-space-sized sets.
    ///
    /// # Panics
    ///
    /// Panics if `s` is unbounded.
    pub fn image(&self, s: &Set) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        s.enumerate(|p| out.push(self.apply(p)));
        out.sort();
        out.dedup();
        out
    }

    /// Exact preimage of a target polyhedron: `{ x ∈ domain | M(x) ∈ target }`
    /// as a polyhedron over the input space.
    ///
    /// # Panics
    ///
    /// Panics if arities mismatch.
    pub fn preimage(&self, domain: &Polyhedron, target: &Polyhedron) -> Polyhedron {
        assert_eq!(target.dim(), self.dim_out(), "target dimension mismatch");
        let mut out = domain.clone();
        for c in target.constraints() {
            // Substitute y_k := outputs[k] in the target constraint.
            let e = c.expr();
            let mut acc = LinExpr::constant(self.dim_in, e.constant_term());
            for k in 0..self.dim_out() {
                let coeff = e.coeff(k);
                if coeff != 0 {
                    acc = acc.plus(&self.outputs[k].scaled(coeff));
                }
            }
            out.add(match c.relation() {
                crate::constraint::Relation::GeqZero => Constraint::geq_zero(acc),
                crate::constraint::Relation::EqZero => Constraint::eq_zero(acc),
            });
        }
        out
    }
}

impl fmt::Debug for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ins: Vec<String> = (0..self.dim_in).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = ins.iter().map(|s| s.as_str()).collect();
        let outs: Vec<String> = self.outputs.iter().map(|e| e.display_with(&refs)).collect();
        write!(f, "({}) -> ({})", refs.join(", "), outs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transpose_shift() -> AffineMap {
        AffineMap::new(
            2,
            vec![LinExpr::var(2, 1), LinExpr::var(2, 0).plus_const(1)],
        )
    }

    #[test]
    fn apply_and_identity() {
        let m = transpose_shift();
        assert_eq!(m.apply(&[3, 7]), vec![7, 4]);
        let id = AffineMap::identity(3);
        assert_eq!(id.apply(&[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn composition_matches_pointwise() {
        let m = transpose_shift();
        let comp = m.compose(&m); // (i, j) -> (i + 1, j + 1)
        for p in [[0i64, 0], [2, 5], [-3, 4]] {
            assert_eq!(comp.apply(&p), m.apply(&m.apply(&p)));
        }
        assert_eq!(comp.apply(&[2, 5]), vec![3, 6]);
    }

    #[test]
    fn compose_with_identity_is_noop() {
        let m = transpose_shift();
        let id = AffineMap::identity(2);
        assert_eq!(m.compose(&id), m);
        assert_eq!(id.compose(&m), m);
    }

    #[test]
    fn graph_contains_exactly_the_pairs() {
        let m = transpose_shift();
        let dom = Polyhedron::universe(2)
            .with_range(0, 0, 3)
            .with_range(1, 0, 3);
        let g = m.graph(&dom);
        assert_eq!(g.dim(), 4);
        assert!(g.contains(&[1, 2, 2, 2]));
        assert!(!g.contains(&[1, 2, 2, 3]));
        assert_eq!(g.count_points(), dom.count_points());
    }

    #[test]
    fn image_of_box() {
        let m = transpose_shift();
        let s = Set::from(
            Polyhedron::universe(2)
                .with_range(0, 0, 1)
                .with_range(1, 5, 6),
        );
        let img = m.image(&s);
        assert_eq!(img, vec![vec![5, 1], vec![5, 2], vec![6, 1], vec![6, 2]]);
    }

    #[test]
    fn preimage_inverts_image() {
        let m = transpose_shift();
        let dom = Polyhedron::universe(2)
            .with_range(0, 0, 9)
            .with_range(1, 0, 9);
        // Target: first output coordinate == 4 (i.e. j == 4).
        let target = Polyhedron::universe(2).with(Constraint::eq(
            &LinExpr::var(2, 0),
            &LinExpr::constant(2, 4),
        ));
        let pre = m.preimage(&dom, &target);
        let mut pts = Vec::new();
        pre.enumerate(|p| pts.push(p.to_vec()));
        assert_eq!(pts.len(), 10);
        assert!(pts.iter().all(|p| p[1] == 4));
    }
}
