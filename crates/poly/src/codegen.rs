//! Loop generation ("codegen"): synthesize a scanning loop nest for a
//! polyhedron or a union of polyhedra, in the style of the Omega library's
//! `codegen` utility.
//!
//! Each variable of the space becomes a loop; its bounds are
//! `max(ceil(e/d), …)` / `min(floor(e/d), …)` expressions over the outer
//! variables, obtained by Fourier–Motzkin elimination. Constraints that the
//! rational bounds cannot express exactly become integer *guards* evaluated
//! in the innermost body, so the generated nest enumerates exactly the
//! integer points of the input.

use crate::expr::{ceil_div, floor_div, LinExpr};
use crate::polyhedron::Polyhedron;
use crate::set::Set;
use std::fmt;

/// One bound term: `ceil(expr / divisor)` for lower bounds,
/// `floor(expr / divisor)` for upper bounds. `expr` refers only to loop
/// variables outer to the bounded one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundTerm {
    /// Numerator expression over the outer variables.
    pub expr: LinExpr,
    /// Positive divisor.
    pub divisor: i64,
}

impl BoundTerm {
    fn eval_lower(&self, prefix: &[i64]) -> i64 {
        ceil_div(self.expr.eval_prefix(prefix), self.divisor)
    }

    fn eval_upper(&self, prefix: &[i64]) -> i64 {
        floor_div(self.expr.eval_prefix(prefix), self.divisor)
    }

    fn display_with(&self, names: &[&str], lower: bool) -> String {
        let body = self.expr.display_with(names);
        if self.divisor == 1 {
            body
        } else if lower {
            format!("ceil(({body})/{})", self.divisor)
        } else {
            format!("floor(({body})/{})", self.divisor)
        }
    }
}

/// A generated loop for one variable: `for v = max(lowers) .. min(uppers)`.
#[derive(Clone, Debug)]
pub struct ScanLoop {
    /// Index of the variable this loop scans.
    pub var: usize,
    /// Lower-bound terms; the loop starts at their maximum.
    pub lowers: Vec<BoundTerm>,
    /// Upper-bound terms; the loop ends at their minimum.
    pub uppers: Vec<BoundTerm>,
}

impl ScanLoop {
    /// Evaluates the loop's `(lo, hi)` range given the outer variables.
    pub fn range_at(&self, prefix: &[i64]) -> (i64, i64) {
        let lo = self
            .lowers
            .iter()
            .map(|b| b.eval_lower(prefix))
            .max()
            .expect("generated loop has no lower bound");
        let hi = self
            .uppers
            .iter()
            .map(|b| b.eval_upper(prefix))
            .min()
            .expect("generated loop has no upper bound");
        (lo, hi)
    }
}

/// A loop nest scanning exactly the integer points of one polyhedron.
///
/// # Examples
///
/// ```
/// use dpm_poly::{Polyhedron, ScanNest};
/// let p = Polyhedron::universe(2).with_range(0, 0, 2).with_range(1, 0, 1);
/// let nest = ScanNest::build(&p);
/// let mut n = 0;
/// nest.execute(|_| n += 1);
/// assert_eq!(n, 6);
/// ```
#[derive(Clone, Debug)]
pub struct ScanNest {
    dim: usize,
    loops: Vec<ScanLoop>,
    guards: Polyhedron,
    empty: bool,
}

impl ScanNest {
    /// Builds the scanning nest for `p` in natural variable order
    /// (variable 0 outermost).
    ///
    /// # Panics
    ///
    /// Panics if `p` is non-empty but unbounded in some variable (iteration
    /// spaces in this crate are always bounded).
    pub fn build(p: &Polyhedron) -> ScanNest {
        let dim = p.dim();
        if p.is_empty() {
            return ScanNest {
                dim,
                loops: Vec::new(),
                guards: Polyhedron::empty(dim),
                empty: true,
            };
        }
        let chain = p.projection_chain();
        let mut loops = Vec::with_capacity(dim);
        for (level, projected) in chain.iter().enumerate().take(dim) {
            let (lower_cs, upper_cs) = projected.level_bounds(level);
            let mut lowers = Vec::new();
            for c in &lower_cs {
                // a*x + e >= 0, a > 0  =>  x >= ceil(-e/a)
                let a = c.expr().coeff(level);
                let mut e = c.expr().clone();
                e.set_coeff(level, 0);
                lowers.push(BoundTerm {
                    expr: e.scaled(-1),
                    divisor: a,
                });
            }
            let mut uppers = Vec::new();
            for c in &upper_cs {
                // a*x + e >= 0, a < 0  =>  x <= floor(e/-a)
                let a = c.expr().coeff(level);
                let mut e = c.expr().clone();
                e.set_coeff(level, 0);
                uppers.push(BoundTerm {
                    expr: e,
                    divisor: -a,
                });
            }
            assert!(
                !lowers.is_empty() && !uppers.is_empty(),
                "variable {level} is unbounded; cannot generate a scanning loop"
            );
            loops.push(ScanLoop {
                var: level,
                lowers,
                uppers,
            });
        }
        ScanNest {
            dim,
            loops,
            guards: p.clone(),
            empty: false,
        }
    }

    /// Number of variables scanned.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The generated loops, outermost first.
    pub fn loops(&self) -> &[ScanLoop] {
        &self.loops
    }

    /// Runs the nest, calling `f` at each integer point (lexicographic
    /// order).
    pub fn execute<F: FnMut(&[i64])>(&self, mut f: F) {
        if self.empty {
            return;
        }
        if self.dim == 0 {
            f(&[]);
            return;
        }
        let mut point = vec![0i64; self.dim];
        self.exec_rec(0, &mut point, &mut f);
    }

    fn exec_rec<F: FnMut(&[i64])>(&self, level: usize, point: &mut Vec<i64>, f: &mut F) {
        let (lo, hi) = self.loops[level].range_at(&point[..level]);
        for x in lo..=hi {
            point[level] = x;
            if level + 1 == self.dim {
                if self.guards.contains(point) {
                    f(point);
                }
            } else {
                self.exec_rec(level + 1, point, f);
            }
        }
    }

    /// Number of points the nest scans.
    pub fn count(&self) -> u64 {
        let mut n = 0;
        self.execute(|_| n += 1);
        n
    }

    /// A resumable cursor over the nest's points: the same points as
    /// [`execute`](Self::execute), in the same lexicographic order, pulled
    /// one at a time with O(depth) state. The cursor owns a clone of the
    /// nest so it can outlive the borrow it was created from.
    pub fn cursor(&self) -> ScanCursor {
        ScanCursor::new(self.clone())
    }

    /// Pretty-prints the nest as pseudo-code with the given variable names
    /// and a body placeholder.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != self.dim()`.
    pub fn display_with(&self, names: &[&str], body: &str) -> String {
        assert_eq!(names.len(), self.dim, "names length mismatch");
        if self.empty {
            return "// empty scan\n".to_string();
        }
        let mut out = String::new();
        for (depth, l) in self.loops.iter().enumerate() {
            let indent = "  ".repeat(depth);
            let lo: Vec<String> = l
                .lowers
                .iter()
                .map(|b| b.display_with(names, true))
                .collect();
            let hi: Vec<String> = l
                .uppers
                .iter()
                .map(|b| b.display_with(names, false))
                .collect();
            let lo = match <[String; 1]>::try_from(lo) {
                Ok([only]) => only,
                Err(many) => format!("max({})", many.join(", ")),
            };
            let hi = match <[String; 1]>::try_from(hi) {
                Ok([only]) => only,
                Err(many) => format!("min({})", many.join(", ")),
            };
            out.push_str(&format!(
                "{indent}for {} = {} .. {} {{\n",
                names[l.var], lo, hi
            ));
        }
        let indent = "  ".repeat(self.loops.len());
        out.push_str(&format!("{indent}{body}\n"));
        for depth in (0..self.loops.len()).rev() {
            out.push_str(&format!("{}}}\n", "  ".repeat(depth)));
        }
        out
    }
}

/// A sequence of scanning nests covering a union of polyhedra, deduplicating
/// points shared between disjuncts.
#[derive(Clone, Debug)]
pub struct ScanProgram {
    nests: Vec<ScanNest>,
    parts: Vec<Polyhedron>,
}

impl ScanProgram {
    /// Builds one scanning nest per non-empty disjunct of `set`.
    pub fn build(set: &Set) -> ScanProgram {
        let parts: Vec<Polyhedron> = set
            .parts()
            .iter()
            .filter(|p| !p.is_empty())
            .cloned()
            .collect();
        let nests = parts.iter().map(ScanNest::build).collect();
        ScanProgram { nests, parts }
    }

    /// The per-disjunct nests.
    pub fn nests(&self) -> &[ScanNest] {
        &self.nests
    }

    /// Runs every nest in order, visiting each distinct point once.
    pub fn execute<F: FnMut(&[i64])>(&self, mut f: F) {
        for (i, nest) in self.nests.iter().enumerate() {
            nest.execute(|pt| {
                if !self.parts[..i].iter().any(|q| q.contains(pt)) {
                    f(pt);
                }
            });
        }
    }

    /// Number of distinct points scanned.
    pub fn count(&self) -> u64 {
        let mut n = 0;
        self.execute(|_| n += 1);
        n
    }
}

impl fmt::Display for ScanNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.dim).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        write!(f, "{}", self.display_with(&refs, "// body"))
    }
}

/// Pull-based odometer over a [`ScanNest`]: yields exactly the points of
/// [`ScanNest::execute`], in the same lexicographic order, one
/// [`next_point`](Self::next_point) call at a time.
///
/// State is one coordinate plus one cached upper bound per level, so a
/// cursor over a billion-point nest costs the same as one over ten points —
/// this is what lets trace generation stream symbolic schedules without
/// materializing the iteration space.
///
/// # Examples
///
/// ```
/// use dpm_poly::{Polyhedron, ScanNest};
/// let p = Polyhedron::universe(2).with_range(0, 0, 2).with_range(1, 0, 1);
/// let nest = ScanNest::build(&p);
/// let mut eager = Vec::new();
/// nest.execute(|pt| eager.push(pt.to_vec()));
/// let mut cursor = nest.cursor();
/// let mut lazy = Vec::new();
/// while let Some(pt) = cursor.next_point() {
///     lazy.push(pt.to_vec());
/// }
/// assert_eq!(eager, lazy);
/// ```
#[derive(Clone, Debug)]
pub struct ScanCursor {
    nest: ScanNest,
    point: Vec<i64>,
    /// Upper bound cached when each level was entered (bounds depend only
    /// on the outer prefix, which is fixed for the duration of the entry).
    his: Vec<i64>,
    started: bool,
    done: bool,
}

impl ScanCursor {
    fn new(nest: ScanNest) -> ScanCursor {
        let dim = nest.dim;
        let done = nest.empty;
        ScanCursor {
            nest,
            point: vec![0; dim],
            his: vec![0; dim],
            started: false,
            done,
        }
    }

    /// Advances to the next point and returns it, or `None` once the nest
    /// is exhausted (and forever after).
    pub fn next_point(&mut self) -> Option<&[i64]> {
        if self.done {
            return None;
        }
        let dim = self.nest.dim;
        if dim == 0 {
            // A non-empty zero-dimensional nest scans the single empty
            // tuple, exactly as `execute` does.
            self.done = true;
            return Some(&self.point[..0]);
        }
        // `entering` means level's bounds have not been evaluated yet for
        // the current outer prefix; otherwise we advance its value.
        let (mut level, mut entering) = if self.started {
            (dim - 1, false)
        } else {
            self.started = true;
            (0, true)
        };
        loop {
            if entering {
                let (lo, hi) = self.nest.loops[level].range_at(&self.point[..level]);
                if lo > hi {
                    // Empty range: backtrack to the next outer value.
                    if level == 0 {
                        self.done = true;
                        return None;
                    }
                    level -= 1;
                    entering = false;
                    continue;
                }
                self.point[level] = lo;
                self.his[level] = hi;
            } else {
                if self.point[level] >= self.his[level] {
                    if level == 0 {
                        self.done = true;
                        return None;
                    }
                    level -= 1;
                    continue;
                }
                self.point[level] += 1;
            }
            if level + 1 == dim {
                if self.nest.guards.contains(&self.point) {
                    return Some(&self.point);
                }
                // Guard rejected this innermost value; try the next one.
                entering = false;
            } else {
                level += 1;
                entering = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::expr::LinExpr;

    #[test]
    fn scan_matches_enumeration_rectangle() {
        let p = Polyhedron::universe(2)
            .with_range(0, 0, 4)
            .with_range(1, -2, 2);
        let nest = ScanNest::build(&p);
        let mut scanned = Vec::new();
        nest.execute(|pt| scanned.push(pt.to_vec()));
        let mut enumerated = Vec::new();
        p.enumerate(|pt| enumerated.push(pt.to_vec()));
        assert_eq!(scanned, enumerated);
    }

    #[test]
    fn scan_matches_enumeration_triangle() {
        let p = Polyhedron::universe(2)
            .with_range(0, 0, 7)
            .with_range(1, 0, 7)
            .with(Constraint::geq_zero(
                LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
            ));
        let nest = ScanNest::build(&p);
        assert_eq!(nest.count(), p.count_points());
    }

    #[test]
    fn scan_with_scaled_bounds_uses_ceil_floor() {
        // { x | 1 <= 2x <= 9 } = {1,2,3,4}
        let p = Polyhedron::universe(1)
            .with(Constraint::geq_zero(LinExpr::from_parts(vec![2], -1)))
            .with(Constraint::geq_zero(LinExpr::from_parts(vec![-2], 9)));
        let nest = ScanNest::build(&p);
        let mut xs = Vec::new();
        nest.execute(|pt| xs.push(pt[0]));
        assert_eq!(xs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_polyhedron_scans_nothing() {
        let p = Polyhedron::universe(1).with_range(0, 5, 2);
        let nest = ScanNest::build(&p);
        assert_eq!(nest.count(), 0);
    }

    #[test]
    fn display_contains_loops() {
        let p = Polyhedron::universe(2)
            .with_range(0, 0, 3)
            .with_range(1, 0, 3);
        let nest = ScanNest::build(&p);
        let text = nest.display_with(&["i", "j"], "body(i, j);");
        assert!(text.contains("for i = 0 .. 3 {"));
        assert!(text.contains("for j = 0 .. 3 {"));
        assert!(text.contains("body(i, j);"));
    }

    #[test]
    fn program_over_union_deduplicates() {
        let a = Polyhedron::universe(1).with_range(0, 0, 5);
        let b = Polyhedron::universe(1).with_range(0, 3, 8);
        let s = Set::from(a).into_union(Set::from(b));
        let prog = ScanProgram::build(&s);
        assert_eq!(prog.count(), 9);
    }

    #[test]
    fn stripe_block_scan() {
        // Outer loop over stripe-owner blocks (q), inner over iterations i
        // inside block 2q+1 of size 4 within 0..16 — the shape the symbolic
        // restructurer generates.
        let q = LinExpr::var(2, 0);
        let i = LinExpr::var(2, 1);
        let base = q.scaled(8).plus_const(4);
        let p = Polyhedron::universe(2)
            .with_range(0, 0, 1)
            .with_range(1, 0, 15)
            .with(Constraint::geq(&i, &base))
            .with(Constraint::leq(&i, &base.plus_const(3)));
        let nest = ScanNest::build(&p);
        let mut is = Vec::new();
        nest.execute(|pt| is.push(pt[1]));
        assert_eq!(is, vec![4, 5, 6, 7, 12, 13, 14, 15]);
    }

    /// Pulls every point out of `nest.cursor()` and checks the sequence is
    /// identical to what `execute` visits.
    fn assert_cursor_matches(nest: &ScanNest) {
        let mut eager = Vec::new();
        nest.execute(|pt| eager.push(pt.to_vec()));
        let mut cursor = nest.cursor();
        let mut lazy = Vec::new();
        while let Some(pt) = cursor.next_point() {
            lazy.push(pt.to_vec());
        }
        assert_eq!(eager, lazy);
        assert!(
            cursor.next_point().is_none(),
            "exhausted cursor must stay exhausted"
        );
    }

    #[test]
    fn cursor_matches_execute_rectangle_and_triangle() {
        assert_cursor_matches(&ScanNest::build(
            &Polyhedron::universe(2)
                .with_range(0, 0, 4)
                .with_range(1, -2, 2),
        ));
        assert_cursor_matches(&ScanNest::build(
            &Polyhedron::universe(2)
                .with_range(0, 0, 7)
                .with_range(1, 0, 7)
                .with(Constraint::geq_zero(
                    LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)),
                )),
        ));
    }

    #[test]
    fn cursor_matches_execute_with_guards_and_holes() {
        // Stripe-shaped inner ranges leave empty inner loops for some
        // outer values; the cursor must backtrack through them.
        let q = LinExpr::var(2, 0);
        let i = LinExpr::var(2, 1);
        let base = q.scaled(8).plus_const(4);
        let p = Polyhedron::universe(2)
            .with_range(0, 0, 1)
            .with_range(1, 0, 15)
            .with(Constraint::geq(&i, &base))
            .with(Constraint::leq(&i, &base.plus_const(3)));
        assert_cursor_matches(&ScanNest::build(&p));
        // { x | 1 <= 2x <= 9 }: scaled bounds exercise ceil/floor.
        let scaled = Polyhedron::universe(1)
            .with(Constraint::geq_zero(LinExpr::from_parts(vec![2], -1)))
            .with(Constraint::geq_zero(LinExpr::from_parts(vec![-2], 9)));
        assert_cursor_matches(&ScanNest::build(&scaled));
    }

    #[test]
    fn cursor_on_empty_and_zero_dim_nests() {
        let empty = ScanNest::build(&Polyhedron::universe(1).with_range(0, 5, 2));
        assert!(empty.cursor().next_point().is_none());
        let zero = ScanNest::build(&Polyhedron::universe(0));
        let mut c = zero.cursor();
        assert_eq!(c.next_point(), Some(&[][..]));
        assert!(c.next_point().is_none());
    }
}
