//! Affine (linear + constant) integer expressions over an ordered variable
//! space.
//!
//! A [`LinExpr`] with dimension `n` denotes the affine form
//! `c0*x0 + c1*x1 + … + c(n-1)*x(n-1) + k`, where the `xi` are the
//! variables of the enclosing space. All arithmetic is checked:
//! coefficient overflow panics rather than wrapping, which in this
//! crate's usage (loop bounds of simulated programs) indicates a logic
//! error upstream.

use std::fmt;

/// Greatest common divisor of two non-negative integers.
///
/// `gcd(0, 0)` is defined as `0`.
///
/// # Examples
///
/// ```
/// assert_eq!(dpm_poly::gcd(12, 18), 6);
/// assert_eq!(dpm_poly::gcd(0, 7), 7);
/// ```
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Floor division: largest integer `q` with `q * d <= n`. Requires `d > 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(dpm_poly::floor_div(7, 2), 3);
/// assert_eq!(dpm_poly::floor_div(-7, 2), -4);
/// ```
///
/// # Panics
///
/// Panics if `d <= 0`.
pub fn floor_div(n: i64, d: i64) -> i64 {
    assert!(d > 0, "floor_div requires a positive divisor, got {d}");
    n.div_euclid(d)
}

/// Ceiling division: smallest integer `q` with `q * d >= n`. Requires `d > 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(dpm_poly::ceil_div(7, 2), 4);
/// assert_eq!(dpm_poly::ceil_div(-7, 2), -3);
/// ```
///
/// # Panics
///
/// Panics if `d <= 0`.
pub fn ceil_div(n: i64, d: i64) -> i64 {
    assert!(d > 0, "ceil_div requires a positive divisor, got {d}");
    -((-n).div_euclid(d))
}

/// An affine expression `sum(coeffs[i] * x_i) + constant` over a fixed-arity
/// variable space.
///
/// The dimension (number of variables) is the length of the coefficient
/// vector and must agree between expressions that are combined.
///
/// # Examples
///
/// ```
/// use dpm_poly::LinExpr;
/// // 2*x0 - x1 + 3 over a 2-variable space
/// let e = LinExpr::var(2, 0).scaled(2).minus(&LinExpr::var(2, 1)).plus_const(3);
/// assert_eq!(e.eval(&[5, 4]), 9);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LinExpr {
    coeffs: Vec<i64>,
    constant: i64,
}

impl LinExpr {
    /// The zero expression over `dim` variables.
    pub fn zero(dim: usize) -> Self {
        LinExpr {
            coeffs: vec![0; dim],
            constant: 0,
        }
    }

    /// The constant expression `k` over `dim` variables.
    pub fn constant(dim: usize, k: i64) -> Self {
        LinExpr {
            coeffs: vec![0; dim],
            constant: k,
        }
    }

    /// The single-variable expression `x_index` over `dim` variables.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn var(dim: usize, index: usize) -> Self {
        assert!(
            index < dim,
            "variable index {index} out of range for dim {dim}"
        );
        let mut coeffs = vec![0; dim];
        coeffs[index] = 1;
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Builds an expression from raw parts.
    pub fn from_parts(coeffs: Vec<i64>, constant: i64) -> Self {
        LinExpr { coeffs, constant }
    }

    /// Number of variables in the expression's space.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of variable `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    pub fn coeff(&self, index: usize) -> i64 {
        self.coeffs[index]
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// All coefficients, in variable order.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// Returns `true` if every coefficient is zero (the expression is
    /// constant).
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Sets the coefficient of variable `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    pub fn set_coeff(&mut self, index: usize, value: i64) {
        self.coeffs[index] = value;
    }

    /// Adds `delta` to the constant term, returning the new expression.
    #[must_use]
    pub fn plus_const(&self, delta: i64) -> Self {
        let mut r = self.clone();
        r.constant = r
            .constant
            .checked_add(delta)
            .expect("constant overflow in LinExpr::plus_const");
        r
    }

    /// Pointwise sum of two expressions of equal dimension.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ or on coefficient overflow.
    #[must_use]
    pub fn plus(&self, other: &LinExpr) -> Self {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dimension mismatch in LinExpr::plus"
        );
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| a.checked_add(b).expect("coefficient overflow"))
            .collect();
        LinExpr {
            coeffs,
            constant: self
                .constant
                .checked_add(other.constant)
                .expect("constant overflow"),
        }
    }

    /// Pointwise difference of two expressions of equal dimension.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ or on coefficient overflow.
    #[must_use]
    pub fn minus(&self, other: &LinExpr) -> Self {
        self.plus(&other.scaled(-1))
    }

    /// The expression multiplied by the scalar `k`.
    ///
    /// # Panics
    ///
    /// Panics on coefficient overflow.
    #[must_use]
    pub fn scaled(&self, k: i64) -> Self {
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|&c| c.checked_mul(k).expect("coefficient overflow"))
                .collect(),
            constant: self.constant.checked_mul(k).expect("constant overflow"),
        }
    }

    /// Evaluates the expression at the given point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()` or on arithmetic overflow.
    pub fn eval(&self, point: &[i64]) -> i64 {
        assert_eq!(point.len(), self.dim(), "point dimension mismatch in eval");
        let mut acc: i128 = self.constant as i128;
        for (c, x) in self.coeffs.iter().zip(point) {
            acc += (*c as i128) * (*x as i128);
        }
        i64::try_from(acc).expect("overflow evaluating LinExpr")
    }

    /// Evaluates using only the first `point.len()` variables; remaining
    /// coefficients must be zero.
    ///
    /// This is the evaluation used during code generation, where bounds of
    /// inner loops refer only to already-fixed outer variables.
    ///
    /// # Panics
    ///
    /// Panics if a coefficient beyond `point.len()` is non-zero.
    pub fn eval_prefix(&self, point: &[i64]) -> i64 {
        for (i, &c) in self.coeffs.iter().enumerate().skip(point.len()) {
            assert!(
                c == 0,
                "eval_prefix: variable {i} is unbound but has coefficient {c}"
            );
        }
        let mut acc: i128 = self.constant as i128;
        for (c, x) in self.coeffs.iter().zip(point) {
            acc += (*c as i128) * (*x as i128);
        }
        i64::try_from(acc).expect("overflow evaluating LinExpr")
    }

    /// Substitutes variable `index` with `replacement` (an expression over
    /// the same space), returning the new expression. The coefficient of
    /// `index` in `replacement` must be zero.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ, if `replacement` mentions `index`, or on
    /// overflow.
    #[must_use]
    pub fn substitute(&self, index: usize, replacement: &LinExpr) -> Self {
        assert_eq!(
            self.dim(),
            replacement.dim(),
            "dimension mismatch in substitute"
        );
        assert_eq!(
            replacement.coeff(index),
            0,
            "replacement must not mention the substituted variable"
        );
        let c = self.coeff(index);
        let mut out = self.clone();
        out.set_coeff(index, 0);
        out.plus(&replacement.scaled(c))
    }

    /// Embeds this expression into a larger space of `new_dim` variables,
    /// mapping variable `i` to `var_map[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `var_map.len() != self.dim()` or any target index is out of
    /// range.
    #[must_use]
    pub fn remap(&self, new_dim: usize, var_map: &[usize]) -> Self {
        assert_eq!(var_map.len(), self.dim(), "var_map length mismatch");
        let mut out = LinExpr::constant(new_dim, self.constant);
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c != 0 {
                let t = var_map[i];
                assert!(t < new_dim, "remap target {t} out of range");
                out.coeffs[t] = out.coeffs[t].checked_add(c).expect("overflow in remap");
            }
        }
        out
    }

    /// Content (gcd of all coefficients and the constant); `0` for the zero
    /// expression.
    pub fn content(&self) -> i64 {
        let mut g = self.constant.abs();
        for &c in &self.coeffs {
            g = gcd(g, c);
        }
        g
    }

    /// Gcd of the variable coefficients only (ignores the constant).
    pub fn coeff_content(&self) -> i64 {
        let mut g = 0;
        for &c in &self.coeffs {
            g = gcd(g, c);
        }
        g
    }

    /// Renders the expression with the given variable names.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != self.dim()`.
    pub fn display_with(&self, names: &[&str]) -> String {
        assert_eq!(names.len(), self.dim(), "names length mismatch");
        let mut parts: Vec<String> = Vec::new();
        for (i, &c) in self.coeffs.iter().enumerate() {
            match c {
                0 => {}
                1 => parts.push(names[i].to_string()),
                -1 => parts.push(format!("-{}", names[i])),
                _ => parts.push(format!("{}*{}", c, names[i])),
            }
        }
        if self.constant != 0 || parts.is_empty() {
            parts.push(self.constant.to_string());
        }
        let mut s = String::new();
        for (k, p) in parts.iter().enumerate() {
            if k == 0 {
                s.push_str(p);
            } else if let Some(rest) = p.strip_prefix('-') {
                s.push_str(" - ");
                s.push_str(rest);
            } else {
                s.push_str(" + ");
                s.push_str(p);
            }
        }
        s
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.dim()).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        write!(f, "{}", self.display_with(&refs))
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
    }

    #[test]
    fn floor_ceil_div() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_div(8, 4), 2);
        assert_eq!(ceil_div(7, 2), 4);
        assert_eq!(ceil_div(-7, 2), -3);
        assert_eq!(ceil_div(8, 4), 2);
    }

    #[test]
    #[should_panic]
    fn floor_div_rejects_nonpositive() {
        let _ = floor_div(1, 0);
    }

    #[test]
    fn arithmetic() {
        let x = LinExpr::var(3, 0);
        let y = LinExpr::var(3, 1);
        let e = x.scaled(2).plus(&y.scaled(-3)).plus_const(7);
        assert_eq!(e.eval(&[1, 2, 99]), 2 - 6 + 7);
        assert_eq!(e.coeff(0), 2);
        assert_eq!(e.coeff(1), -3);
        assert_eq!(e.coeff(2), 0);
        assert_eq!(e.constant_term(), 7);
        let d = e.minus(&e);
        assert!(d.is_constant());
        assert_eq!(d.eval(&[0, 0, 0]), 0);
    }

    #[test]
    fn substitution() {
        // e = 2x + y; substitute x := y + 1  =>  2y + 2 + y = 3y + 2
        let e = LinExpr::var(2, 0).scaled(2).plus(&LinExpr::var(2, 1));
        let r = LinExpr::var(2, 1).plus_const(1);
        let s = e.substitute(0, &r);
        assert_eq!(s.coeff(0), 0);
        assert_eq!(s.coeff(1), 3);
        assert_eq!(s.constant_term(), 2);
    }

    #[test]
    fn remap_into_larger_space() {
        let e = LinExpr::var(2, 0)
            .plus(&LinExpr::var(2, 1).scaled(5))
            .plus_const(-2);
        let m = e.remap(4, &[3, 1]);
        assert_eq!(m.dim(), 4);
        assert_eq!(m.coeff(3), 1);
        assert_eq!(m.coeff(1), 5);
        assert_eq!(m.constant_term(), -2);
    }

    #[test]
    fn eval_prefix_allows_unbound_zero_coeffs() {
        let e = LinExpr::var(3, 0).plus_const(4);
        assert_eq!(e.eval_prefix(&[2]), 6);
    }

    #[test]
    #[should_panic]
    fn eval_prefix_rejects_unbound_nonzero() {
        let e = LinExpr::var(3, 2);
        let _ = e.eval_prefix(&[1, 2]);
    }

    #[test]
    fn display() {
        let e = LinExpr::var(2, 0)
            .scaled(2)
            .minus(&LinExpr::var(2, 1))
            .plus_const(-3);
        assert_eq!(e.display_with(&["i", "j"]), "2*i - j - 3");
        assert_eq!(LinExpr::zero(1).display_with(&["i"]), "0");
    }

    #[test]
    fn content() {
        let e = LinExpr::from_parts(vec![4, 6], 10);
        assert_eq!(e.content(), 2);
        assert_eq!(e.coeff_content(), 2);
        let z = LinExpr::zero(2);
        assert_eq!(z.content(), 0);
    }
}
