//! Unions of convex polyhedra ("Presburger-lite" sets) with the algebra the
//! restructuring algorithm needs: union, intersection, difference,
//! membership, and exact enumeration.

use crate::constraint::Constraint;
use crate::polyhedron::Polyhedron;
use std::fmt;

/// A finite union of convex integer polyhedra over a common space.
///
/// This plays the role of an Omega-library relation restricted to sets: the
/// restructuring algorithm of the paper builds per-disk iteration sets
/// `Q_d`, subtracts scheduled iterations (`Q = Q − Q_d`), and intersects
/// with dependence-ready windows — exactly the operations provided here.
///
/// # Examples
///
/// ```
/// use dpm_poly::{Set, Polyhedron};
/// let a = Set::from(Polyhedron::universe(1).with_range(0, 0, 9));
/// let b = Set::from(Polyhedron::universe(1).with_range(0, 4, 6));
/// let d = a.subtract(&b);
/// assert_eq!(d.count_points(), 7);
/// assert!(d.contains(&[3]) && !d.contains(&[5]));
/// ```
#[derive(Clone)]
pub struct Set {
    dim: usize,
    parts: Vec<Polyhedron>,
}

impl Set {
    /// The empty set over `dim` variables.
    pub fn empty(dim: usize) -> Self {
        Set {
            dim,
            parts: Vec::new(),
        }
    }

    /// The universe over `dim` variables.
    pub fn universe(dim: usize) -> Self {
        Set {
            dim,
            parts: vec![Polyhedron::universe(dim)],
        }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The disjuncts. They may overlap (union does not disjointify); the
    /// enumeration methods deduplicate.
    pub fn parts(&self) -> &[Polyhedron] {
        &self.parts
    }

    /// Whether `point` belongs to any disjunct.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.parts.iter().any(|p| p.contains(point))
    }

    /// Union (concatenation of disjuncts, empty disjuncts dropped lazily).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn union(&self, other: &Set) -> Set {
        assert_eq!(self.dim, other.dim, "dimension mismatch in union");
        let mut parts = self.parts.clone();
        parts.extend(other.parts.iter().cloned());
        Set {
            dim: self.dim,
            parts,
        }
    }

    /// Intersection (pairwise conjunction of disjuncts).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn intersect(&self, other: &Set) -> Set {
        assert_eq!(self.dim, other.dim, "dimension mismatch in intersect");
        let mut parts = Vec::new();
        for a in &self.parts {
            for b in &other.parts {
                let c = a.intersect(b);
                if !c.is_rationally_empty() {
                    parts.push(c);
                }
            }
        }
        Set {
            dim: self.dim,
            parts,
        }
    }

    /// Set difference `self − other`, computed by complement splitting: for
    /// each disjunct `B = c1 ∧ … ∧ ck` of `other`, `A − B` is the union over
    /// `j` of `A ∧ c1 ∧ … ∧ c(j−1) ∧ ¬cj`. The result's disjuncts are
    /// pairwise disjoint with respect to each subtracted disjunct.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn subtract(&self, other: &Set) -> Set {
        self.clone().into_subtract(other)
    }

    /// By-value [`subtract`](Self::subtract): consumes `self`, moving its
    /// disjuncts into the splitting loop instead of cloning them. The
    /// restructurer's `Q = Q − Q_d` update already owns `Q`, so this is the
    /// hot-path entry point (see the `set_difference` microbench).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn into_subtract(mut self, other: &Set) -> Set {
        assert_eq!(self.dim, other.dim, "dimension mismatch in subtract");
        for b in &other.parts {
            if b.is_rationally_empty() {
                // Subtracting nothing: note this also covers a `b` whose
                // stored constraints are accompanied by a proven-infeasible
                // one.
                continue;
            }
            self = self.into_subtract_polyhedron(b);
        }
        self
    }

    fn into_subtract_polyhedron(self, b: &Polyhedron) -> Set {
        let mut parts = Vec::with_capacity(self.parts.len());
        for a in self.parts {
            // A ∧ ¬(c1 ∧ … ∧ ck) = ⋃_j (A ∧ c1 … c(j−1) ∧ ¬cj);
            // when b has no constraints it is the universe and nothing of
            // `a` survives. `a` is moved into the running context; only the
            // surviving pieces are fresh allocations.
            let mut context = a;
            for c in b.constraints() {
                for neg in c.negations() {
                    let piece = context.clone().with(neg);
                    if !piece.is_rationally_empty() {
                        parts.push(piece);
                    }
                }
                context.add(c.clone());
                if context.is_trivially_empty() {
                    // Every further piece would be context ∧ ¬cj = empty.
                    break;
                }
            }
        }
        Set {
            dim: self.dim,
            parts,
        }
    }

    /// Whether the set has no integer points.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// Drops disjuncts proven empty (by the cheap rational test); returns
    /// the simplified set.
    #[must_use]
    pub fn simplified(&self) -> Set {
        Set {
            dim: self.dim,
            parts: self
                .parts
                .iter()
                .filter(|p| !p.is_rationally_empty())
                .cloned()
                .collect(),
        }
    }

    /// Calls `f` for each distinct integer point. Points are produced in
    /// lexicographic order *within* each disjunct; a point contained in an
    /// earlier disjunct is skipped so each point is visited exactly once.
    ///
    /// # Panics
    ///
    /// Panics if any disjunct is unbounded.
    pub fn enumerate<F: FnMut(&[i64])>(&self, mut f: F) {
        for (i, p) in self.parts.iter().enumerate() {
            p.enumerate(|pt| {
                if !self.parts[..i].iter().any(|q| q.contains(pt)) {
                    f(pt);
                }
            });
        }
    }

    /// All distinct points, sorted lexicographically.
    ///
    /// # Panics
    ///
    /// Panics if any disjunct is unbounded.
    pub fn points_sorted(&self) -> Vec<Vec<i64>> {
        let mut pts = Vec::new();
        self.enumerate(|p| pts.push(p.to_vec()));
        pts.sort();
        pts
    }

    /// Number of distinct integer points.
    ///
    /// # Panics
    ///
    /// Panics if any disjunct is unbounded.
    pub fn count_points(&self) -> u64 {
        let mut n = 0;
        self.enumerate(|_| n += 1);
        n
    }

    /// Adds a constraint to every disjunct.
    #[must_use]
    pub fn constrained(&self, c: &Constraint) -> Set {
        self.clone().into_constrained(c)
    }

    /// By-value [`constrained`](Self::constrained): adds the constraint to
    /// every disjunct in place, reusing the existing allocations.
    #[must_use]
    pub fn into_constrained(mut self, c: &Constraint) -> Set {
        for p in &mut self.parts {
            p.add(c.clone());
        }
        self
    }

    /// Renders the set with the given variable names.
    pub fn display_with(&self, names: &[&str]) -> String {
        if self.parts.is_empty() {
            return "{ } (empty)".to_string();
        }
        let parts: Vec<String> = self.parts.iter().map(|p| p.display_with(names)).collect();
        parts.join(" union ")
    }
}

impl From<Polyhedron> for Set {
    fn from(p: Polyhedron) -> Self {
        Set {
            dim: p.dim(),
            parts: vec![p],
        }
    }
}

impl fmt::Debug for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.dim).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        write!(f, "{}", self.display_with(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;

    fn interval(lo: i64, hi: i64) -> Set {
        Set::from(Polyhedron::universe(1).with_range(0, lo, hi))
    }

    #[test]
    fn union_counts_each_point_once() {
        let u = interval(0, 5).union(&interval(3, 8));
        assert_eq!(u.count_points(), 9);
    }

    #[test]
    fn intersect_intervals() {
        let i = interval(0, 5).intersect(&interval(3, 8));
        assert_eq!(i.points_sorted(), vec![vec![3], vec![4], vec![5]]);
    }

    #[test]
    fn subtract_middle() {
        let d = interval(0, 9).subtract(&interval(4, 6));
        assert_eq!(d.count_points(), 7);
        assert!(d.contains(&[0]) && d.contains(&[9]));
        assert!(!d.contains(&[5]));
    }

    #[test]
    fn subtract_everything_yields_empty() {
        let d = interval(2, 4).subtract(&interval(0, 10));
        assert!(d.is_empty());
    }

    #[test]
    fn subtract_disjoint_is_identity() {
        let a = interval(0, 3);
        let d = a.subtract(&interval(10, 20));
        assert_eq!(d.count_points(), a.count_points());
    }

    #[test]
    fn subtract_union_of_pieces() {
        let b = interval(1, 2).union(&interval(5, 6));
        let d = interval(0, 9).subtract(&b);
        assert_eq!(
            d.points_sorted(),
            vec![vec![0], vec![3], vec![4], vec![7], vec![8], vec![9]]
        );
    }

    #[test]
    fn cardinality_law() {
        // |A - B| == |A| - |A ∩ B|
        let a = interval(0, 19);
        let b = interval(15, 30);
        assert_eq!(
            a.subtract(&b).count_points(),
            a.count_points() - a.intersect(&b).count_points()
        );
    }

    #[test]
    fn two_dimensional_difference() {
        let square = Set::from(
            Polyhedron::universe(2)
                .with_range(0, 0, 3)
                .with_range(1, 0, 3),
        );
        let diag = Set::from(
            Polyhedron::universe(2).with(Constraint::eq(&LinExpr::var(2, 0), &LinExpr::var(2, 1))),
        );
        let off = square.subtract(&diag);
        assert_eq!(off.count_points(), 16 - 4);
        assert!(!off.contains(&[2, 2]));
        assert!(off.contains(&[2, 1]));
    }

    #[test]
    fn empty_set_behaviour() {
        let e = Set::empty(2);
        assert!(e.is_empty());
        assert_eq!(e.count_points(), 0);
        let a = Set::from(
            Polyhedron::universe(2)
                .with_range(0, 0, 1)
                .with_range(1, 0, 1),
        );
        assert_eq!(a.subtract(&e).count_points(), 4);
        assert_eq!(a.intersect(&e).count_points(), 0);
        assert_eq!(a.union(&e).count_points(), 4);
    }

    #[test]
    fn simplified_drops_empty_parts() {
        let a = interval(0, 3).union(&interval(10, 5)); // second is empty
        assert_eq!(a.simplified().parts().len(), 1);
    }
}
