//! Unions of convex polyhedra ("Presburger-lite" sets) with the algebra the
//! restructuring algorithm needs: union, intersection, difference,
//! membership, and exact enumeration.

use crate::constraint::Constraint;
use crate::polyhedron::Polyhedron;
use std::fmt;

/// A finite union of convex integer polyhedra over a common space.
///
/// This plays the role of an Omega-library relation restricted to sets: the
/// restructuring algorithm of the paper builds per-disk iteration sets
/// `Q_d`, subtracts scheduled iterations (`Q = Q − Q_d`), and intersects
/// with dependence-ready windows — exactly the operations provided here.
///
/// # Examples
///
/// ```
/// use dpm_poly::{Set, Polyhedron};
/// let a = Set::from(Polyhedron::universe(1).with_range(0, 0, 9));
/// let b = Set::from(Polyhedron::universe(1).with_range(0, 4, 6));
/// let d = a.subtract(&b);
/// assert_eq!(d.count_points(), 7);
/// assert!(d.contains(&[3]) && !d.contains(&[5]));
/// ```
#[derive(Clone)]
pub struct Set {
    dim: usize,
    parts: Vec<Polyhedron>,
}

impl Set {
    /// The empty set over `dim` variables.
    pub fn empty(dim: usize) -> Self {
        Set {
            dim,
            parts: Vec::new(),
        }
    }

    /// The universe over `dim` variables.
    pub fn universe(dim: usize) -> Self {
        Set {
            dim,
            parts: vec![Polyhedron::universe(dim)],
        }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The disjuncts. They may overlap (union does not disjointify); the
    /// enumeration methods deduplicate.
    pub fn parts(&self) -> &[Polyhedron] {
        &self.parts
    }

    /// Whether `point` belongs to any disjunct.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.parts.iter().any(|p| p.contains(point))
    }

    /// Union (concatenation of disjuncts, empty disjuncts dropped lazily).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn union(&self, other: &Set) -> Set {
        self.clone().into_union(other.clone())
    }

    /// By-value [`union`](Self::union): consumes both operands, moving their
    /// disjunct vectors instead of cloning them — the same ownership
    /// discipline as [`into_subtract`](Self::into_subtract) and
    /// [`into_constrained`](Self::into_constrained).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn into_union(mut self, other: Set) -> Set {
        assert_eq!(self.dim, other.dim, "dimension mismatch in union");
        self.parts.extend(other.parts);
        self
    }

    /// Intersection (pairwise conjunction of disjuncts).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn intersect(&self, other: &Set) -> Set {
        assert_eq!(self.dim, other.dim, "dimension mismatch in intersect");
        let mut parts = Vec::new();
        for a in &self.parts {
            for b in &other.parts {
                let c = a.intersect(b);
                if !c.is_rationally_empty() {
                    parts.push(c);
                }
            }
        }
        Set {
            dim: self.dim,
            parts,
        }
    }

    /// Set difference `self − other`, computed by complement splitting: for
    /// each disjunct `B = c1 ∧ … ∧ ck` of `other`, `A − B` is the union over
    /// `j` of `A ∧ c1 ∧ … ∧ c(j−1) ∧ ¬cj`. The result's disjuncts are
    /// pairwise disjoint with respect to each subtracted disjunct.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn subtract(&self, other: &Set) -> Set {
        self.clone().into_subtract(other)
    }

    /// By-value [`subtract`](Self::subtract): consumes `self`, moving its
    /// disjuncts into the splitting loop instead of cloning them. The
    /// restructurer's `Q = Q − Q_d` update already owns `Q`, so this is the
    /// hot-path entry point (see the `set_difference` microbench).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn into_subtract(mut self, other: &Set) -> Set {
        assert_eq!(self.dim, other.dim, "dimension mismatch in subtract");
        let _prof = dpm_prof::scope("poly_subtract");
        for b in &other.parts {
            if b.is_rationally_empty() {
                // Subtracting nothing: note this also covers a `b` whose
                // stored constraints are accompanied by a proven-infeasible
                // one.
                continue;
            }
            self = self.into_subtract_polyhedron(b);
        }
        self
    }

    fn into_subtract_polyhedron(self, b: &Polyhedron) -> Set {
        let mut parts = Vec::with_capacity(self.parts.len());
        for a in self.parts {
            // A ∧ ¬(c1 ∧ … ∧ ck) = ⋃_j (A ∧ c1 … c(j−1) ∧ ¬cj);
            // when b has no constraints it is the universe and nothing of
            // `a` survives. `a` is moved into the running context; only the
            // surviving pieces are fresh allocations.
            let mut context = a;
            for c in b.constraints() {
                for neg in c.negations() {
                    let piece = context.clone().with(neg);
                    if !piece.is_rationally_empty() {
                        parts.push(piece);
                    }
                }
                context.add(c.clone());
                if context.is_trivially_empty() {
                    // Every further piece would be context ∧ ¬cj = empty.
                    break;
                }
            }
        }
        Set {
            dim: self.dim,
            parts,
        }
    }

    /// Whether the set has no integer points.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// Whether every integer point of `self` lies in `other`
    /// (`A ⊆ B ⇔ A ∖ B = ∅`). Exact over integers — the subtraction's
    /// emptiness check falls back to lattice enumeration where the
    /// rational test is inconclusive.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn is_subset_of(&self, other: &Set) -> bool {
        self.subtract(other).is_empty()
    }

    /// Some integer point of the set, or `None` if it is empty. Used to
    /// produce concrete witnesses for non-empty violation sets.
    pub fn sample_point(&self) -> Option<Vec<i64>> {
        self.parts.iter().find_map(|p| p.find_point())
    }

    /// Drops disjuncts proven empty (by the cheap rational test); returns
    /// the simplified set.
    #[must_use]
    pub fn simplified(&self) -> Set {
        Set {
            dim: self.dim,
            parts: self
                .parts
                .iter()
                .filter(|p| !p.is_rationally_empty())
                .cloned()
                .collect(),
        }
    }

    /// Calls `f` for each distinct integer point. Points are produced in
    /// lexicographic order *within* each disjunct; a point contained in an
    /// earlier disjunct is skipped so each point is visited exactly once.
    ///
    /// # Panics
    ///
    /// Panics if any disjunct is unbounded.
    pub fn enumerate<F: FnMut(&[i64])>(&self, mut f: F) {
        for (i, p) in self.parts.iter().enumerate() {
            p.enumerate(|pt| {
                if !self.parts[..i].iter().any(|q| q.contains(pt)) {
                    f(pt);
                }
            });
        }
    }

    /// All distinct points, sorted lexicographically, written into `buf` as
    /// a flat row-major buffer of `dim()`-length coordinate tuples — one
    /// heap allocation total, versus one per point for
    /// [`points_sorted`](Self::points_sorted). `buf` is cleared first;
    /// returns the number of points written.
    ///
    /// # Panics
    ///
    /// Panics if any disjunct is unbounded.
    pub fn points_into(&self, buf: &mut Vec<i64>) -> usize {
        buf.clear();
        self.enumerate(|p| buf.extend_from_slice(p));
        if self.dim == 0 {
            return usize::from(self.parts.iter().any(|p| p.contains(&[])));
        }
        let n = buf.len() / self.dim;
        // A single disjunct already enumerates in lexicographic order; with
        // several, sort the tuple chunks via an index permutation.
        if self.parts.len() > 1 && n > 1 {
            let chunk = |i: usize| &buf[i * self.dim..(i + 1) * self.dim];
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| chunk(a).cmp(chunk(b)));
            let mut sorted = Vec::with_capacity(buf.len());
            for i in order {
                sorted.extend_from_slice(chunk(i));
            }
            *buf = sorted;
        }
        n
    }

    /// A pull-based cursor over the set's points: exactly the points of
    /// [`points_into`](Self::points_into) — distinct, lexicographically
    /// sorted — streamed one at a time without ever materializing them.
    ///
    /// Each disjunct gets a lazy [`crate::ScanCursor`] (which yields its
    /// points in lexicographic order); a point is owned by the first
    /// disjunct containing it, and the per-disjunct streams are k-way
    /// merged. For a single disjunct this is a zero-copy pass-through.
    ///
    /// # Panics
    ///
    /// [`SetCursor::next_point`] panics if any disjunct is unbounded.
    pub fn cursor(&self) -> SetCursor<'_> {
        SetCursor::new(self)
    }

    /// All distinct points, sorted lexicographically.
    ///
    /// # Panics
    ///
    /// Panics if any disjunct is unbounded.
    pub fn points_sorted(&self) -> Vec<Vec<i64>> {
        if self.dim == 0 {
            return if self.parts.iter().any(|p| p.contains(&[])) {
                vec![Vec::new()]
            } else {
                Vec::new()
            };
        }
        let mut flat = Vec::new();
        let n = self.points_into(&mut flat);
        (0..n)
            .map(|i| flat[i * self.dim..(i + 1) * self.dim].to_vec())
            .collect()
    }

    /// Number of distinct integer points.
    ///
    /// When the disjuncts are pairwise disjoint (always true for a single
    /// disjunct, and checked cheaply for a handful of them), the count is
    /// the sum of the per-polyhedron closed-form counts — no point is ever
    /// enumerated. Overlapping disjuncts fall back to
    /// [`count_points_enumerated`](Self::count_points_enumerated).
    ///
    /// # Panics
    ///
    /// Panics if any disjunct is unbounded.
    pub fn count_points(&self) -> u64 {
        match self.parts.len() {
            0 => 0,
            1 => self.parts[0].count_points(),
            _ => {
                let disjoint = self.parts.iter().enumerate().all(|(i, a)| {
                    self.parts[i + 1..]
                        .iter()
                        .all(|b| a.intersect(b).is_empty())
                });
                if disjoint {
                    self.parts.iter().map(|p| p.count_points()).sum()
                } else {
                    self.count_points_enumerated()
                }
            }
        }
    }

    /// Number of distinct integer points by deduplicated enumeration — the
    /// pre-closed-form baseline, kept public for benchmarking and
    /// equivalence tests.
    ///
    /// # Panics
    ///
    /// Panics if any disjunct is unbounded.
    pub fn count_points_enumerated(&self) -> u64 {
        let mut n = 0;
        self.enumerate(|_| n += 1);
        n
    }

    /// Adds a constraint to every disjunct.
    #[must_use]
    pub fn constrained(&self, c: &Constraint) -> Set {
        self.clone().into_constrained(c)
    }

    /// By-value [`constrained`](Self::constrained): adds the constraint to
    /// every disjunct in place, reusing the existing allocations.
    #[must_use]
    pub fn into_constrained(mut self, c: &Constraint) -> Set {
        for p in &mut self.parts {
            p.add(c.clone());
        }
        self
    }

    /// Renders the set with the given variable names.
    pub fn display_with(&self, names: &[&str]) -> String {
        if self.parts.is_empty() {
            return "{ } (empty)".to_string();
        }
        let parts: Vec<String> = self.parts.iter().map(|p| p.display_with(names)).collect();
        parts.join(" union ")
    }
}

impl From<Polyhedron> for Set {
    fn from(p: Polyhedron) -> Self {
        Set {
            dim: p.dim(),
            parts: vec![p],
        }
    }
}

impl fmt::Debug for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.dim).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        write!(f, "{}", self.display_with(&refs))
    }
}

/// Streaming counterpart of [`Set::points_into`]: yields the set's
/// distinct points in lexicographic order, one at a time, in O(parts ×
/// depth) state. Created by [`Set::cursor`].
pub struct SetCursor<'a> {
    set: &'a Set,
    state: CursorState,
}

enum CursorState {
    /// Lazily initialized on the first pull so constructing a cursor is
    /// cheap even for sets that are never read.
    Unstarted,
    /// Zero-dimensional sets yield at most one (empty) point.
    ZeroDim { yielded: bool },
    /// Single disjunct: a lex scan is already sorted and duplicate-free,
    /// so the inner cursor's slice passes straight through, zero-copy.
    /// Boxed to keep the enum small next to the stateless variants.
    Single(Box<crate::ScanCursor>),
    /// General case: k-way merge of per-disjunct lex streams, each point
    /// owned by the first disjunct containing it.
    Merge {
        streams: Vec<PartStream>,
        /// The most recently yielded point (the merge output buffer).
        current: Vec<i64>,
    },
}

/// One disjunct's lex stream plus its buffered, already-deduplicated head.
struct PartStream {
    cursor: crate::ScanCursor,
    head: Option<Vec<i64>>,
}

impl<'a> SetCursor<'a> {
    fn new(set: &'a Set) -> SetCursor<'a> {
        SetCursor {
            set,
            state: CursorState::Unstarted,
        }
    }

    /// Pulls a disjunct's next point that is *not* contained in an earlier
    /// disjunct (a point is owned by the first disjunct containing it —
    /// the same rule [`Set::enumerate`] applies).
    fn refill(parts: &[Polyhedron], idx: usize, s: &mut PartStream) {
        s.head = None;
        while let Some(pt) = s.cursor.next_point() {
            if !parts[..idx].iter().any(|q| q.contains(pt)) {
                s.head = Some(pt.to_vec());
                return;
            }
        }
    }

    fn start(&mut self) {
        let parts = &self.set.parts;
        self.state = if self.set.dim == 0 {
            CursorState::ZeroDim { yielded: false }
        } else if parts.len() == 1 {
            CursorState::Single(Box::new(crate::ScanNest::build(&parts[0]).cursor()))
        } else {
            let mut streams: Vec<PartStream> = parts
                .iter()
                .map(|p| PartStream {
                    cursor: crate::ScanNest::build(p).cursor(),
                    head: None,
                })
                .collect();
            for (i, s) in streams.iter_mut().enumerate() {
                Self::refill(parts, i, s);
            }
            CursorState::Merge {
                streams,
                current: Vec::new(),
            }
        };
    }

    /// Advances to the next point and returns it, or `None` once the set
    /// is exhausted (and forever after).
    ///
    /// # Panics
    ///
    /// Panics if any disjunct is unbounded.
    pub fn next_point(&mut self) -> Option<&[i64]> {
        if matches!(self.state, CursorState::Unstarted) {
            self.start();
        }
        match &mut self.state {
            CursorState::Unstarted => unreachable!("started above"),
            CursorState::ZeroDim { yielded } => {
                // Match `points_into`: one empty tuple iff any part is
                // non-empty at dimension zero.
                if !*yielded && self.set.parts.iter().any(|p| p.contains(&[])) {
                    *yielded = true;
                    Some(&[])
                } else {
                    None
                }
            }
            CursorState::Single(cursor) => cursor.next_point(),
            CursorState::Merge { streams, current } => {
                // Ownership dedup makes the heads pairwise distinct, so
                // the merge needs no tie-break: take the lexicographic
                // minimum head.
                let min = streams
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| s.head.as_deref().map(|h| (i, h)))
                    .min_by(|(_, a), (_, b)| a.cmp(b))
                    .map(|(i, _)| i)?;
                *current = streams[min].head.take().expect("head checked above");
                Self::refill(&self.set.parts, min, &mut streams[min]);
                Some(current)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;

    fn interval(lo: i64, hi: i64) -> Set {
        Set::from(Polyhedron::universe(1).with_range(0, lo, hi))
    }

    #[test]
    fn union_counts_each_point_once() {
        let u = interval(0, 5).union(&interval(3, 8));
        assert_eq!(u.count_points(), 9);
    }

    #[test]
    fn intersect_intervals() {
        let i = interval(0, 5).intersect(&interval(3, 8));
        assert_eq!(i.points_sorted(), vec![vec![3], vec![4], vec![5]]);
    }

    #[test]
    fn subtract_middle() {
        let d = interval(0, 9).subtract(&interval(4, 6));
        assert_eq!(d.count_points(), 7);
        assert!(d.contains(&[0]) && d.contains(&[9]));
        assert!(!d.contains(&[5]));
    }

    #[test]
    fn subtract_everything_yields_empty() {
        let d = interval(2, 4).subtract(&interval(0, 10));
        assert!(d.is_empty());
    }

    #[test]
    fn subtract_disjoint_is_identity() {
        let a = interval(0, 3);
        let d = a.subtract(&interval(10, 20));
        assert_eq!(d.count_points(), a.count_points());
    }

    #[test]
    fn subtract_union_of_pieces() {
        let b = interval(1, 2).union(&interval(5, 6));
        let d = interval(0, 9).subtract(&b);
        assert_eq!(
            d.points_sorted(),
            vec![vec![0], vec![3], vec![4], vec![7], vec![8], vec![9]]
        );
    }

    #[test]
    fn cardinality_law() {
        // |A - B| == |A| - |A ∩ B|
        let a = interval(0, 19);
        let b = interval(15, 30);
        assert_eq!(
            a.subtract(&b).count_points(),
            a.count_points() - a.intersect(&b).count_points()
        );
    }

    #[test]
    fn two_dimensional_difference() {
        let square = Set::from(
            Polyhedron::universe(2)
                .with_range(0, 0, 3)
                .with_range(1, 0, 3),
        );
        let diag = Set::from(
            Polyhedron::universe(2).with(Constraint::eq(&LinExpr::var(2, 0), &LinExpr::var(2, 1))),
        );
        let off = square.subtract(&diag);
        assert_eq!(off.count_points(), 16 - 4);
        assert!(!off.contains(&[2, 2]));
        assert!(off.contains(&[2, 1]));
    }

    #[test]
    fn empty_set_behaviour() {
        let e = Set::empty(2);
        assert!(e.is_empty());
        assert_eq!(e.count_points(), 0);
        let a = Set::from(
            Polyhedron::universe(2)
                .with_range(0, 0, 1)
                .with_range(1, 0, 1),
        );
        assert_eq!(a.subtract(&e).count_points(), 4);
        assert_eq!(a.intersect(&e).count_points(), 0);
        assert_eq!(a.union(&e).count_points(), 4);
    }

    #[test]
    fn simplified_drops_empty_parts() {
        let a = interval(0, 3).union(&interval(10, 5)); // second is empty
        assert_eq!(a.simplified().parts().len(), 1);
    }

    #[test]
    fn into_union_matches_union() {
        let a = interval(0, 5);
        let b = interval(3, 8);
        let by_ref = a.union(&b);
        let by_val = a.into_union(b);
        assert_eq!(by_ref.count_points(), by_val.count_points());
        assert_eq!(by_val.count_points(), 9);
        assert_eq!(by_val.parts().len(), 2);
    }

    #[test]
    fn points_into_flat_buffer() {
        let square = Set::from(
            Polyhedron::universe(2)
                .with_range(0, 0, 1)
                .with_range(1, 0, 1),
        );
        let mut buf = vec![99; 3]; // stale contents must be cleared
        let n = square.points_into(&mut buf);
        assert_eq!(n, 4);
        assert_eq!(buf, vec![0, 0, 0, 1, 1, 0, 1, 1]);
        // Overlapping multi-part union: flat output equals points_sorted.
        let u = interval(0, 5).union(&interval(3, 8));
        let n = u.points_into(&mut buf);
        assert_eq!(n, 9);
        let from_flat: Vec<Vec<i64>> = buf.chunks(1).map(|c| c.to_vec()).collect();
        assert_eq!(from_flat, u.points_sorted());
    }

    #[test]
    fn disjoint_union_counts_in_closed_form() {
        let u = interval(0, 5).union(&interval(10, 15));
        assert_eq!(u.count_points(), 12);
        assert_eq!(u.count_points(), u.count_points_enumerated());
        // Overlapping parts still agree with the enumerated baseline.
        let o = interval(0, 5).union(&interval(3, 8));
        assert_eq!(o.count_points(), o.count_points_enumerated());
    }

    /// Streams `s.cursor()` dry and checks it yields exactly the flat
    /// buffer `points_into` produces, in the same order.
    fn assert_cursor_matches(s: &Set) {
        let mut buf = Vec::new();
        let n = s.points_into(&mut buf);
        let mut cursor = s.cursor();
        let mut streamed = Vec::new();
        let mut count = 0;
        while let Some(pt) = cursor.next_point() {
            streamed.extend_from_slice(pt);
            count += 1;
        }
        assert_eq!(count, n);
        assert_eq!(streamed, buf);
        assert!(
            cursor.next_point().is_none(),
            "exhausted cursor must stay exhausted"
        );
    }

    #[test]
    fn cursor_matches_points_into() {
        // Single part (zero-copy path).
        assert_cursor_matches(&Set::from(
            Polyhedron::universe(2)
                .with_range(0, 0, 3)
                .with_range(1, 0, 2),
        ));
        // Overlapping parts (merge + ownership dedup).
        assert_cursor_matches(&interval(0, 5).union(&interval(3, 8)));
        // Disjoint out-of-order parts: the merge must interleave.
        assert_cursor_matches(&interval(10, 15).union(&interval(0, 5)));
        // Empty set.
        assert_cursor_matches(&Set::empty(2));
        // Two-dimensional overlap, where dedup and lex merge interact.
        let a = Polyhedron::universe(2)
            .with_range(0, 0, 2)
            .with_range(1, 0, 2);
        let b = Polyhedron::universe(2)
            .with_range(0, 1, 3)
            .with_range(1, 1, 3);
        assert_cursor_matches(&Set::from(a).union(&Set::from(b)));
    }

    #[test]
    fn cursor_zero_dim() {
        assert_cursor_matches(&Set::universe(0));
        assert_cursor_matches(&Set::empty(0));
    }
}
