//! Affine constraints: `expr >= 0` and `expr == 0`.

use crate::expr::{floor_div, gcd, LinExpr};
use std::fmt;

/// The relation a [`Constraint`] asserts about its expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `expr >= 0`
    GeqZero,
    /// `expr == 0`
    EqZero,
}

/// An affine constraint over a variable space: `expr >= 0` or `expr == 0`.
///
/// # Examples
///
/// ```
/// use dpm_poly::{Constraint, LinExpr};
/// // i - 1 >= 0, i.e. i >= 1
/// let c = Constraint::geq_zero(LinExpr::var(1, 0).plus_const(-1));
/// assert!(c.holds_at(&[1]));
/// assert!(!c.holds_at(&[0]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    expr: LinExpr,
    relation: Relation,
}

impl Constraint {
    /// Constraint `expr >= 0`.
    pub fn geq_zero(expr: LinExpr) -> Self {
        Constraint {
            expr,
            relation: Relation::GeqZero,
        }
    }

    /// Constraint `expr == 0`.
    pub fn eq_zero(expr: LinExpr) -> Self {
        Constraint {
            expr,
            relation: Relation::EqZero,
        }
    }

    /// Convenience: `lhs >= rhs`.
    pub fn geq(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint::geq_zero(lhs.minus(rhs))
    }

    /// Convenience: `lhs <= rhs`.
    pub fn leq(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint::geq_zero(rhs.minus(lhs))
    }

    /// Convenience: `lhs == rhs`.
    pub fn eq(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint::eq_zero(lhs.minus(rhs))
    }

    /// The underlying expression.
    pub fn expr(&self) -> &LinExpr {
        &self.expr
    }

    /// The relation kind.
    pub fn relation(&self) -> Relation {
        self.relation
    }

    /// Number of variables in the constraint's space.
    pub fn dim(&self) -> usize {
        self.expr.dim()
    }

    /// Whether the constraint holds at `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn holds_at(&self, point: &[i64]) -> bool {
        let v = self.expr.eval(point);
        match self.relation {
            Relation::GeqZero => v >= 0,
            Relation::EqZero => v == 0,
        }
    }

    /// Integer-tightens the constraint in place and reports satisfiability.
    ///
    /// For an inequality whose variable coefficients share content `g > 1`,
    /// the constraint `g*e' + k >= 0` is equivalent (over the integers) to
    /// `e' + floor(k/g) >= 0`. For an equality, unsatisfiable unless `g`
    /// divides the constant. Constant constraints are resolved to a verdict.
    ///
    /// Returns `false` if the constraint is unsatisfiable on its own (e.g.
    /// `-1 >= 0`), in which case the containing polyhedron is empty.
    pub fn normalize(&mut self) -> bool {
        if self.expr.is_constant() {
            let k = self.expr.constant_term();
            return match self.relation {
                Relation::GeqZero => k >= 0,
                Relation::EqZero => k == 0,
            };
        }
        let g = self.expr.coeff_content();
        debug_assert!(g > 0);
        if g == 1 {
            return true;
        }
        let k = self.expr.constant_term();
        match self.relation {
            Relation::GeqZero => {
                let coeffs = self.expr.coeffs().iter().map(|c| c / g).collect();
                self.expr = LinExpr::from_parts(coeffs, floor_div(k, g));
                true
            }
            Relation::EqZero => {
                if k % g != 0 {
                    return false;
                }
                let coeffs = self.expr.coeffs().iter().map(|c| c / g).collect();
                self.expr = LinExpr::from_parts(coeffs, k / g);
                true
            }
        }
    }

    /// Whether the constraint is trivially true regardless of the point
    /// (constant and satisfied).
    pub fn is_trivially_true(&self) -> bool {
        if !self.expr.is_constant() {
            return false;
        }
        let k = self.expr.constant_term();
        match self.relation {
            Relation::GeqZero => k >= 0,
            Relation::EqZero => k == 0,
        }
    }

    /// The negation of the constraint as a set of alternative constraints
    /// (a disjunction). Over the integers:
    ///
    /// * `¬(e >= 0)`  is `-e - 1 >= 0`;
    /// * `¬(e == 0)`  is `e - 1 >= 0` **or** `-e - 1 >= 0`.
    pub fn negations(&self) -> Vec<Constraint> {
        match self.relation {
            Relation::GeqZero => vec![Constraint::geq_zero(self.expr.scaled(-1).plus_const(-1))],
            Relation::EqZero => vec![
                Constraint::geq_zero(self.expr.plus_const(-1)),
                Constraint::geq_zero(self.expr.scaled(-1).plus_const(-1)),
            ],
        }
    }

    /// Splits an equality into the pair of inequalities `e >= 0`, `-e >= 0`;
    /// an inequality is returned unchanged.
    pub fn as_inequalities(&self) -> Vec<Constraint> {
        match self.relation {
            Relation::GeqZero => vec![self.clone()],
            Relation::EqZero => vec![
                Constraint::geq_zero(self.expr.clone()),
                Constraint::geq_zero(self.expr.scaled(-1)),
            ],
        }
    }

    /// Substitutes variable `index` with `replacement` in the constraint.
    #[must_use]
    pub fn substitute(&self, index: usize, replacement: &LinExpr) -> Constraint {
        Constraint {
            expr: self.expr.substitute(index, replacement),
            relation: self.relation,
        }
    }

    /// Remaps the constraint into a larger space (see [`LinExpr::remap`]).
    #[must_use]
    pub fn remap(&self, new_dim: usize, var_map: &[usize]) -> Constraint {
        Constraint {
            expr: self.expr.remap(new_dim, var_map),
            relation: self.relation,
        }
    }

    /// Renders the constraint with the given variable names.
    pub fn display_with(&self, names: &[&str]) -> String {
        let op = match self.relation {
            Relation::GeqZero => ">=",
            Relation::EqZero => "==",
        };
        format!("{} {} 0", self.expr.display_with(names), op)
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.relation {
            Relation::GeqZero => ">=",
            Relation::EqZero => "==",
        };
        write!(f, "{:?} {} 0", self.expr, op)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Normalizes the gcd content out of a lower/upper bound pair used by
/// Fourier–Motzkin combination: returns `(a/g, b/g)` with `g = gcd(a, b)`.
pub(crate) fn reduce_pair(a: i64, b: i64) -> (i64, i64) {
    let g = gcd(a, b);
    if g <= 1 {
        (a, b)
    } else {
        (a / g, b / g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_at() {
        let c = Constraint::geq_zero(LinExpr::var(2, 0).minus(&LinExpr::var(2, 1)));
        assert!(c.holds_at(&[3, 2]));
        assert!(c.holds_at(&[2, 2]));
        assert!(!c.holds_at(&[1, 2]));
        let e = Constraint::eq_zero(LinExpr::var(1, 0).plus_const(-5));
        assert!(e.holds_at(&[5]));
        assert!(!e.holds_at(&[4]));
    }

    #[test]
    fn normalize_tightens_inequalities() {
        // 2x - 3 >= 0  =>  x - 2 >= 0 (x >= ceil(3/2) = 2)
        let mut c = Constraint::geq_zero(LinExpr::from_parts(vec![2], -3));
        assert!(c.normalize());
        assert_eq!(c.expr().coeff(0), 1);
        assert_eq!(c.expr().constant_term(), -2);
    }

    #[test]
    fn normalize_detects_infeasible_equality() {
        // 2x + 1 == 0 has no integer solution
        let mut c = Constraint::eq_zero(LinExpr::from_parts(vec![2], 1));
        assert!(!c.normalize());
    }

    #[test]
    fn normalize_constant_verdicts() {
        let mut t = Constraint::geq_zero(LinExpr::constant(1, 0));
        assert!(t.normalize());
        let mut f = Constraint::geq_zero(LinExpr::constant(1, -1));
        assert!(!f.normalize());
        let mut e = Constraint::eq_zero(LinExpr::constant(1, 0));
        assert!(e.normalize());
    }

    #[test]
    fn negation_of_inequality() {
        // ¬(x >= 0)  ==  -x - 1 >= 0  ==  x <= -1
        let c = Constraint::geq_zero(LinExpr::var(1, 0));
        let n = c.negations();
        assert_eq!(n.len(), 1);
        assert!(n[0].holds_at(&[-1]));
        assert!(!n[0].holds_at(&[0]));
    }

    #[test]
    fn negation_of_equality_is_disjunction() {
        let c = Constraint::eq_zero(LinExpr::var(1, 0));
        let n = c.negations();
        assert_eq!(n.len(), 2);
        // x = 3 satisfies the first branch; x = -2 the second; x = 0 neither.
        assert!(n[0].holds_at(&[3]) || n[1].holds_at(&[3]));
        assert!(n[0].holds_at(&[-2]) || n[1].holds_at(&[-2]));
        assert!(!n[0].holds_at(&[0]) && !n[1].holds_at(&[0]));
    }

    #[test]
    fn equality_splits_into_inequalities() {
        let c = Constraint::eq_zero(LinExpr::var(1, 0).plus_const(-2));
        let ineqs = c.as_inequalities();
        assert_eq!(ineqs.len(), 2);
        assert!(ineqs.iter().all(|c| c.holds_at(&[2])));
        assert!(!ineqs.iter().all(|c| c.holds_at(&[3])));
        assert!(!ineqs.iter().all(|c| c.holds_at(&[1])));
    }

    #[test]
    fn display_names() {
        let c = Constraint::geq_zero(
            LinExpr::var(2, 0)
                .scaled(3)
                .minus(&LinExpr::var(2, 1))
                .plus_const(1),
        );
        assert_eq!(c.display_with(&["i", "j"]), "3*i - j + 1 >= 0");
    }
}
