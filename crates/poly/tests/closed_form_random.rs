//! Randomized equivalence suite for the closed-form counting and cached
//! projection-chain machinery.
//!
//! Unlike `tests/proptests.rs` (gated behind the `proptests` feature
//! because it needs the external `proptest` crate), this suite is on by
//! default: it seeds the workspace's own `dpm_obs::XorShift64Star`, so
//! every run draws the same polyhedra and a failure reproduces exactly
//! from the printed seed.
//!
//! For each random bounded polyhedron it checks, against the enumeration
//! path that predates the closed forms:
//!
//! * `count_points` (closed form + cache) == `count_points_enumerated`,
//! * every cached query (`is_empty`, `lexmin`, `lexmax`, `bounding_box`)
//!   equals the same query on a freshly built copy,
//! * repeated queries on one value stay stable, and `add` invalidates the
//!   cache rather than serving stale answers.

use dpm_obs::XorShift64Star;
use dpm_poly::{Constraint, LinExpr, Polyhedron};

const CASES: u64 = 200;
const SEED: u64 = 0xD15C_2006;

/// Draws a random bounded polyhedron: a constant box on every variable
/// (so enumeration always terminates) plus a few random affine cuts that
/// can only shrink it — possibly to empty, which is a case worth testing.
fn random_polyhedron(rng: &mut XorShift64Star) -> Polyhedron {
    let dim = rng.range_i64(1, 3) as usize;
    let mut p = Polyhedron::universe(dim);
    for v in 0..dim {
        let lo = rng.range_i64(-8, 8);
        let hi = lo + rng.range_i64(0, 11);
        p = p.with_range(v, lo, hi);
    }
    for _ in 0..rng.range_i64(0, 3) {
        let mut e = LinExpr::constant(dim, rng.range_i64(-20, 20));
        for v in 0..dim {
            e = e.plus(&LinExpr::var(dim, v).scaled(rng.range_i64(-3, 3)));
        }
        p = p.with(Constraint::geq_zero(e));
    }
    p
}

/// Rebuilds `p` from its constraint list, dropping any cached state. A
/// constraint that normalized to `false` is recorded only in the
/// trivially-empty flag, not the list, so that flag carries over.
fn fresh_copy(p: &Polyhedron) -> Polyhedron {
    let mut q = Polyhedron::universe(p.dim());
    for c in p.constraints() {
        q.add(c.clone());
    }
    if p.is_trivially_empty() {
        // Re-induce the flag without touching the stored list: a false
        // constant constraint sets it and is dropped during normalization.
        q.add(Constraint::geq_zero(LinExpr::constant(p.dim(), -1)));
    }
    q
}

#[test]
fn closed_form_count_matches_enumeration_on_random_polyhedra() {
    let mut rng = XorShift64Star::new(SEED);
    for case in 0..CASES {
        let p = random_polyhedron(&mut rng);
        let closed = p.count_points();
        let enumerated = p.count_points_enumerated();
        assert_eq!(
            closed, enumerated,
            "case {case} (seed {SEED:#x}): closed-form count {closed} != \
             enumerated {enumerated} for {p:?}"
        );
    }
}

#[test]
fn cached_queries_match_fresh_queries_on_random_polyhedra() {
    let mut rng = XorShift64Star::new(SEED ^ 0xA5A5_A5A5);
    for case in 0..CASES {
        let p = random_polyhedron(&mut rng);
        // Warm every cache slot, twice, to catch both fill and hit paths.
        for _ in 0..2 {
            let _ = (p.count_points(), p.is_empty(), p.lexmin());
            let _ = (p.lexmax(), p.bounding_box(), p.is_rationally_empty());
        }
        let fresh = fresh_copy(&p);
        let ctx = format!("case {case} (seed {SEED:#x}): {p:?}");
        assert_eq!(p.count_points(), fresh.count_points(), "count: {ctx}");
        assert_eq!(p.is_empty(), fresh.is_empty(), "is_empty: {ctx}");
        assert_eq!(p.lexmin(), fresh.lexmin(), "lexmin: {ctx}");
        assert_eq!(p.lexmax(), fresh.lexmax(), "lexmax: {ctx}");
        assert_eq!(p.bounding_box(), fresh.bounding_box(), "bbox: {ctx}");
        assert_eq!(
            p.is_rationally_empty(),
            fresh.is_rationally_empty(),
            "rat_empty: {ctx}"
        );
    }
}

#[test]
fn add_invalidates_cache_on_random_polyhedra() {
    let mut rng = XorShift64Star::new(SEED ^ 0x5A5A_5A5A);
    for case in 0..CASES {
        let mut p = random_polyhedron(&mut rng);
        let before = p.count_points();
        // Warm the remaining slots too, so a stale-cache bug in any of
        // them would survive into the post-add comparison.
        let _ = (p.is_empty(), p.lexmin(), p.lexmax(), p.bounding_box());
        // Cut with a random half-space through the box's interior.
        let dim = p.dim();
        let v = rng.range_i64(0, dim as i64 - 1) as usize;
        let cut = rng.range_i64(-4, 4);
        p.add(Constraint::geq_zero(LinExpr::var(dim, v).plus_const(-cut)));
        let fresh = fresh_copy(&p);
        let ctx = format!("case {case} (seed {SEED:#x}): {p:?}");
        let after = p.count_points();
        assert_eq!(after, fresh.count_points(), "count after add: {ctx}");
        assert_eq!(after, p.count_points_enumerated(), "closed vs enum: {ctx}");
        assert!(after <= before, "adding a constraint grew the set: {ctx}");
        assert_eq!(p.is_empty(), fresh.is_empty(), "is_empty after add: {ctx}");
        assert_eq!(p.lexmin(), fresh.lexmin(), "lexmin after add: {ctx}");
        assert_eq!(p.lexmax(), fresh.lexmax(), "lexmax after add: {ctx}");
        assert_eq!(
            p.bounding_box(),
            fresh.bounding_box(),
            "bbox after add: {ctx}"
        );
    }
}
