//! Property-based tests for the set algebra and the loop generator: the
//! algebraic laws the restructurer depends on, checked over random boxes,
//! halfspaces, and congruence-style constraints.
//!
//! Off by default: needs the external `proptest` crate, which this tree
//! does not depend on so that it builds fully offline. To run, re-add a
//! `proptest` dev-dependency and pass `--features proptests`.
#![cfg(feature = "proptests")]

use dpm_poly::{Constraint, LinExpr, Polyhedron, ScanNest, ScanProgram, Set};
use proptest::prelude::*;

/// A random box in 2-D with a couple of optional extra halfspaces.
fn arb_polyhedron() -> impl Strategy<Value = Polyhedron> {
    (
        -8i64..8,
        0i64..10,
        -8i64..8,
        0i64..10,
        prop::option::of((-2i64..3, -2i64..3, -12i64..12)),
        prop::option::of((-2i64..3, -2i64..3, -12i64..12)),
    )
        .prop_map(|(x0, dx, y0, dy, h1, h2)| {
            let mut p = Polyhedron::universe(2)
                .with_range(0, x0, x0 + dx)
                .with_range(1, y0, y0 + dy);
            for h in [h1, h2].into_iter().flatten() {
                let (a, b, c) = h;
                p.add(Constraint::geq_zero(LinExpr::from_parts(vec![a, b], c)));
            }
            p
        })
}

fn arb_set() -> impl Strategy<Value = Set> {
    prop::collection::vec(arb_polyhedron(), 1..3).prop_map(|parts| {
        let mut s = Set::empty(2);
        for p in parts {
            s = s.union(&Set::from(p));
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// |A − B| = |A| − |A ∩ B| and (A − B) ∩ B = ∅ and (A − B) ∪ (A ∩ B) = A.
    #[test]
    fn difference_laws(a in arb_set(), b in arb_set()) {
        let diff = a.subtract(&b);
        let inter = a.intersect(&b);
        prop_assert_eq!(diff.count_points(), a.count_points() - inter.count_points());
        prop_assert!(diff.intersect(&b).is_empty());
        let mut rebuilt = diff.union(&inter).points_sorted();
        rebuilt.dedup();
        prop_assert_eq!(rebuilt, a.points_sorted());
    }

    /// Membership agrees with enumeration.
    #[test]
    fn membership_matches_enumeration(a in arb_polyhedron()) {
        let mut pts = Vec::new();
        a.enumerate(|p| pts.push(p.to_vec()));
        for p in &pts {
            prop_assert!(a.contains(p));
        }
        // Points just outside the bounding box are not contained.
        if let Some(first) = pts.first() {
            let outside = vec![first[0] - 1_000, first[1]];
            prop_assert!(!a.contains(&outside));
        }
    }

    /// The generated scanning nest visits exactly the polyhedron's points,
    /// in the same lexicographic order.
    #[test]
    fn scan_nest_is_exact(a in arb_polyhedron()) {
        let nest = ScanNest::build(&a);
        let mut scanned = Vec::new();
        nest.execute(|p| scanned.push(p.to_vec()));
        let mut enumerated = Vec::new();
        a.enumerate(|p| enumerated.push(p.to_vec()));
        prop_assert_eq!(scanned, enumerated);
    }

    /// ScanProgram over a union visits each distinct point exactly once.
    #[test]
    fn scan_program_deduplicates(s in arb_set()) {
        let prog = ScanProgram::build(&s);
        let mut scanned = Vec::new();
        prog.execute(|p| scanned.push(p.to_vec()));
        scanned.sort();
        let sorted = s.points_sorted();
        prop_assert_eq!(scanned.len() as u64, s.count_points());
        prop_assert_eq!(scanned, sorted);
    }

    /// Fourier–Motzkin projection is an over-approximation that is exact on
    /// the projected coordinates of real points.
    #[test]
    fn projection_soundness(a in arb_polyhedron()) {
        let proj = a.project_onto_prefix(1);
        a.enumerate(|p| {
            // Any witness for x1 keeps the projection satisfied.
            assert!(proj.contains(&[p[0], 0]) || proj.contains(p),
                    "projection lost point {p:?}");
        });
    }

    /// Intersection is commutative on point sets.
    #[test]
    fn intersection_commutes(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(
            a.intersect(&b).points_sorted(),
            b.intersect(&a).points_sorted()
        );
    }

    /// Integer tightening: emptiness agrees with brute-force scanning over
    /// the bounding box.
    #[test]
    fn emptiness_is_exact(a in arb_polyhedron()) {
        let empty = a.is_empty();
        let mut found = false;
        // Brute force over a safely larger box.
        for x in -30i64..30 {
            for y in -30i64..30 {
                if a.contains(&[x, y]) {
                    found = true;
                }
            }
        }
        prop_assert_eq!(empty, !found);
    }
}
