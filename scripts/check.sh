#!/usr/bin/env bash
# Full offline quality gate: build, tests, formatting, lints.
#
# Everything runs with --offline: the tree has no registry dependencies by
# design (see README "Building offline"), so this must pass on a machine
# with no network access at all.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo fmt --all --check
run cargo clippy --offline --workspace --all-targets -- -D warnings

echo "All checks passed."
