#!/usr/bin/env bash
# Full offline quality gate: build, tests, formatting, lints.
#
# Everything runs with --offline: the tree has no registry dependencies by
# design (see README "Building offline"), so this must pass on a machine
# with no network access at all.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo fmt --all --check

# Pinned lint set. `-D warnings` promotes every default clippy lint plus
# rustc warnings to errors; the extra pins deny leftover debugging and
# placeholder macros that are warn-by-default (or allow-by-default) and
# would otherwise slip through a green build. Extend the list here rather
# than in per-crate attributes so every crate is held to the same bar.
run cargo clippy --offline --workspace --all-targets -- \
    -D warnings \
    -D clippy::dbg_macro \
    -D clippy::todo \
    -D clippy::unimplemented

# Static legality gate: lint every app, symbolically verify the disk-major
# plan, and exactly verify all four scheduler outputs per app. Exits
# non-zero on any Error-severity diagnostic, so an illegal schedule or a
# malformed program fails the build before any benchmark runs.
run ./target/release/dpm-analyze tiny results/ANALYZE_tiny.json

# Fault-injection determinism suite in release mode: same seed => bit-identical
# reports at 1/2/8 threads, zero plan indistinguishable from no plan, no plan
# ever loses or duplicates work.
run cargo test -q --offline --release --test fault_determinism

# Serial-vs-parallel harness: asserts the DPM_THREADS pool reproduces the
# serial figure-9(a) results byte-for-byte and records wall times plus the
# hot-path microbenches in BENCH_parallel.json (tracked run over run).
run ./target/release/parallel_bench tiny BENCH_parallel.json

# Closed-form counting and cached projection-chain gate: asserts the
# closed-form counts match enumeration, requires >=10x on the counting
# microbench, runs the figure-9(a) matrix at Scale::Small (the first scale
# past Tiny), and fails on order-of-magnitude regressions vs the checked-in
# baseline (tolerance via DPM_BENCH_TOL, default 8x).
run ./target/release/poly_bench small BENCH_poly.json scripts/BENCH_poly_baseline.json

# Chaos sweep: the figure-9(a) matrix under escalating fault rates with a
# fixed seed. Asserts serial == parallel byte-for-byte under every plan,
# re-checks all simulator invariants in release mode, and records the
# per-rate fault/energy aggregates in BENCH_chaos.json (tracked).
run ./target/release/chaos_bench tiny BENCH_chaos.json

echo "All checks passed."
