#!/usr/bin/env bash
# Full offline quality gate: build, tests, formatting, lints.
#
# Everything runs with --offline: the tree has no registry dependencies by
# design (see README "Building offline"), so this must pass on a machine
# with no network access at all.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo fmt --all --check

# Pinned lint set. `-D warnings` promotes every default clippy lint plus
# rustc warnings to errors; the extra pins deny leftover debugging and
# placeholder macros that are warn-by-default (or allow-by-default) and
# would otherwise slip through a green build. Extend the list here rather
# than in per-crate attributes so every crate is held to the same bar.
run cargo clippy --offline --workspace --all-targets -- \
    -D warnings \
    -D clippy::dbg_macro \
    -D clippy::todo \
    -D clippy::unimplemented

# Stricter bar for library code only (`--lib` excludes tests, benches and
# bins, where unwrap/expect on infallible setup is idiomatic): every
# `unsafe` block needs a SAFETY comment, and library code may not unwrap —
# fallible paths must surface typed errors or documented expects.
run cargo clippy --offline --workspace --lib -- \
    -D warnings \
    -D clippy::dbg_macro \
    -D clippy::todo \
    -D clippy::unimplemented \
    -D clippy::undocumented_unsafe_blocks \
    -D clippy::unwrap_used

# Static legality gate: lint every app, symbolically verify the disk-major
# plan, and exactly verify all four scheduler outputs per app. Exits
# non-zero on any Error-severity diagnostic, so an illegal schedule or a
# malformed program fails the build before any benchmark runs.
run ./target/release/dpm-analyze tiny results/ANALYZE_tiny.json

# Fault-injection determinism suite in release mode: same seed => bit-identical
# reports at 1/2/8 threads, zero plan indistinguishable from no plan, no plan
# ever loses or duplicates work.
run cargo test -q --offline --release --test fault_determinism

# Serial-vs-parallel harness: asserts the work-stealing pool reproduces the
# serial figure-9(a) results byte-for-byte (with the profiler off AND on —
# profiling must not perturb simulation output), attributes >=95% of the
# profiled pass's wall time to named scopes (exported to
# results/PROF_tiny.{txt,json}), runs the skewed-weights stealing
# microbench, and records wall times, steal counts, and idle fractions.
# The speedup gate (matrix >1x AND skew >=1.5x) applies only on hosts with
# >=4 cores; below that the record reports the measured values and says
# explicitly that the gate was skipped.
run ./target/release/parallel_bench tiny BENCH_parallel.json

# Oversubscription smoke: same harness at 4x the host's cores. The speedup
# gate is skipped by construction (DPM_PARALLEL_SMOKE=1); what this checks
# is that a heavily oversubscribed work-stealing pool neither deadlocks nor
# loses bit-identity. The record is written for inspection but NOT fed to
# bench-report — its timings measure contention, not performance.
run env DPM_PARALLEL_SMOKE=1 ./target/release/parallel_bench tiny results/BENCH_parallel_smoke.json

# Closed-form counting and cached projection-chain gate: asserts the
# closed-form counts match enumeration, requires >=10x on the counting
# microbench, and runs the figure-9(a) matrix at Scale::Small (the first
# scale past Tiny). Baseline comparison moved to bench-report below.
run ./target/release/poly_bench small BENCH_poly.json

# Chaos sweep: the figure-9(a) matrix under escalating fault rates with a
# fixed seed. Asserts serial == parallel byte-for-byte under every plan,
# re-checks all simulator invariants in release mode, and records the
# per-rate fault/energy aggregates in BENCH_chaos.json (tracked).
run ./target/release/chaos_bench tiny BENCH_chaos.json

# Streaming-pipeline gate: generation → codec spill → replay → simulate at
# Tiny and Small with a counting allocator; hard-fails unless peak heap is
# flat across a 16x request growth (O(disks + window) memory) and the
# codec stays within 16 bytes/request.
run ./target/release/stream_bench BENCH_stream.json

# Tiered-placement gate: the whole suite through flat / compiler-placed /
# heuristic / online-migrated scenarios on a starved heterogeneous array.
# Hard-fails unless the compiler-guided placement beats the flat baseline
# and never loses to the heat-blind heuristic, a single-class tier config
# replays bit-identical to the flat simulator, and migration byte
# accounting balances (2x the event log's logical bytes).
run ./target/release/tier_bench tiny BENCH_tier.json

# Prediction-soundness gate: the static energy oracle's closed-form
# bounds must contain the simulated energy of every Tiny-suite cell x
# policy, the walked iteration counts must match dpm-poly's closed
# forms, and insert_power_hints must emit directive tables that
# verify_hints accepts. Also trends bound tightness and the spin-down
# prediction hit-rate.
run ./target/release/oracle_bench tiny BENCH_oracle.json

# Bench-trend regression gate: schema-checks the six BenchRecord files
# just produced, fails on any failed gate or on metrics regressed beyond
# DPM_BENCH_TOL (default 8x) vs scripts/BENCH_*_baseline.json, and appends
# every record to results/BENCH_TREND.jsonl so the perf trajectory
# accumulates run over run. (The BenchRecord wire format itself is pinned
# by tests/golden/bench_record.json via the workspace test run above.)
run ./target/release/bench-report BENCH_parallel.json BENCH_poly.json BENCH_chaos.json BENCH_stream.json BENCH_tier.json BENCH_oracle.json

echo "All checks passed."
