//! The paper's Figure 4: restructuring in the presence of data
//! dependences. The scheduler clusters accesses disk by disk but defers
//! any iteration whose dependence predecessors have not run yet, taking
//! several rounds over the disks (the while-loop of Figure 3).
//!
//! Run with: `cargo run --example dependence_scheduling`

use disk_reuse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A chain A[i] = A[i-3]: each iteration depends on the one three back,
    // so a pure per-disk clustering is illegal — the schedule must weave
    // between disks, exactly like the arrows of Figure 4.
    let source = "
program fig4;
array A[64] : f64;
nest L {
  for i = 3 .. 63 {
    A[i] = f(A[i-3]);
  }
}
";
    let program = parse_program(source)?;
    // 4 disks, 4 elements per stripe: the ownership pattern cycles every
    // 16 elements, so the i-3 dependence regularly points at the previous
    // disk and forces the scheduler to weave between disks (Figure 4).
    let striping = Striping::new(32, 4, 0);
    let layout = LayoutMap::new(&program, striping);
    let deps = analyze(&program);
    println!(
        "dependence distances of nest L: {:?}",
        deps.nest_exact_distances(0)
    );

    let schedule = restructure_single(&program, &layout, &deps);
    schedule.validate_coverage(&program)?;

    println!("\nschedule (iteration i → disk of A[i]):");
    let mut last_disk = usize::MAX;
    let mut run = Vec::new();
    let flush = |d: usize, run: &mut Vec<i64>| {
        if !run.is_empty() {
            println!("  disk {d}: iterations {run:?}");
            run.clear();
        }
    };
    for it in schedule.iters(0, 0) {
        let i = it.coords()[0];
        let d = layout.disk_of_element(&program, 0, &[i]);
        if d != last_disk {
            if last_disk != usize::MAX {
                flush(last_disk, &mut run);
            }
            last_disk = d;
        }
        run.push(i);
    }
    flush(last_disk, &mut run);

    // Verify legality explicitly: every predecessor runs first.
    let order: Vec<i64> = schedule
        .iters(0, 0)
        .iter()
        .map(|it| it.coords()[0])
        .collect();
    let pos = |v: i64| order.iter().position(|&x| x == v).unwrap();
    for i in 6..64 {
        assert!(
            pos(i - 3) < pos(i),
            "dependence {} -> {} violated",
            i - 3,
            i
        );
    }
    println!("\nall {} dependences respected ✓", 64 - 6);

    // Compare clustering quality with the original order.
    let original = original_schedule(&program);
    println!(
        "mean disk-run length: original {:.1}, restructured {:.1}",
        mean_disk_run_length(&program, &layout, &original),
        mean_disk_run_length(&program, &layout, &schedule),
    );
    Ok(())
}
