//! Observability tour: instrument the whole pipeline with `dpm-obs`,
//! stream events to a JSON-Lines file, and reconstruct per-disk
//! power-state timelines and per-pass timings from that file alone —
//! exactly what an external analysis script would do.
//!
//! Run with: `cargo run --example observability`
//! (set `DPM_OBS_PATH` to choose where the event stream goes).

use disk_reuse::obs::{self, read_json_lines, span_durations, JsonLinesSink};
use disk_reuse::prelude::*;
use dpm_disksim::{ascii_timelines, timelines_from_events};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::var("DPM_OBS_PATH").unwrap_or_else(|_| "dpm-obs.jsonl".into());
    obs::install_sink(Box::new(JsonLinesSink::create(&path)?));
    obs::enable();

    // An ordinary pipeline run — no observability-specific code in it.
    let app = by_name("AST", Scale::Tiny).expect("AST exists");
    let program = app.program();
    let striping = Striping::paper_default();
    let layout = LayoutMap::new(&program, striping);
    let deps = analyze(&program);
    let schedule = apply_transform(&program, &layout, &deps, Transform::DiskReuse);
    let gen = TraceGenerator::new(
        &program,
        &layout,
        TraceGenOptions {
            max_request_bytes: striping.stripe_unit(),
            ..TraceGenOptions::default()
        },
    );
    let (trace, _) = gen.generate(&schedule);
    let sim = Simulator::new(
        DiskParams::default(),
        PowerPolicy::Tpm(TpmConfig::proactive()),
        striping,
    );
    let report = sim.run(&trace);

    // Flush the stream, then work from the file only.
    obs::disable();
    obs::clear_sinks();
    let events = read_json_lines(&path)??;
    println!("{} events in {path}", events.len());

    println!("\nper-pass timings (µs):");
    for (name, us) in span_durations(&events) {
        println!("  {name:<22} {us:>10}");
    }

    println!("\nper-disk power-state timelines, rebuilt from the stream:");
    let timelines = timelines_from_events(
        &events,
        report.obs_run,
        striping.num_disks(),
        report.makespan_ms,
    );
    print!("{}", ascii_timelines(&timelines, report.makespan_ms, 72));
    println!(
        "legend: # busy   . idle (full rpm)   o idle (reduced rpm)   _ standby   ~ transition"
    );
    println!(
        "\nsimulated: {:.0} J, {} spin-downs over {:.0} s (run id {})",
        report.total_energy_j(),
        report.total_spin_downs(),
        report.makespan_ms / 1000.0,
        report.obs_run,
    );
    Ok(())
}
