//! The paper's future work, runnable: jointly optimize the disk layout and
//! the code restructuring for a program, then show the winning combination
//! against sensible defaults.
//!
//! Run with: `cargo run --release --example unified_optimizer`

use disk_reuse::optimizer::{evaluate, unified_optimize, LayoutSearchSpace};
use disk_reuse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program whose two nests disagree about the best layout: row sweeps
    // like coarse stripes, the transposed pass prefers finer ones.
    let program = parse_program(
        "
program mixed;
const N = 192;
array A[N][N] : bytes(4096);
array B[N][N] : bytes(4096);
nest rows { for i = 0 .. N-1 { for j = 0 .. N-1 { A[i][j] = f(A[i][j]) @ 50000; } } }
nest transpose { for i = 0 .. N-1 { for j = 0 .. N-1 { B[i][j] = A[j][i] @ 25000; } } }
nest rows2 { for i = 0 .. N-1 { for j = 0 .. N-1 { B[i][j] = g(B[i][j]) @ 50000; } } }
",
    )?;

    let policy = PowerPolicy::Drpm(DrpmConfig::proactive());
    let default_combo = evaluate(
        &program,
        Striping::paper_default(),
        Transform::Original,
        policy,
    );
    println!(
        "default layout (32 KB × 8) + original code : {:>10.1} J",
        default_combo.energy_j
    );

    let space = LayoutSearchSpace::default();
    let ranked = unified_optimize(&program, &space, policy);
    for c in ranked.iter().take(5) {
        println!(
            "{:<10?} + {:>3} KB stripes × {} disks      : {:>10.1} J",
            c.transform,
            c.striping.stripe_unit() >> 10,
            c.striping.num_disks(),
            c.energy_j,
        );
    }
    let best = &ranked[0];
    println!(
        "\nunified optimum saves {:.1}% over the untuned default — layout and\n\
         restructuring chosen together, as the paper's conclusion proposes.",
        100.0 * (1.0 - best.energy_j / default_combo.energy_j)
    );
    Ok(())
}
