//! The paper's Figure 2: take a program whose nests access two arrays with
//! different patterns, and regenerate its source in the disk-major order of
//! Figure 2(c) using the polyhedral (Omega-style) code generator.
//!
//! Run with: `cargo run --example single_cpu_restructure`

use disk_reuse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 2(a) fragment (sizes shrunk so the output is readable):
    // three nests over U1 and U2 with entirely different access patterns.
    let source = "
program fig2a;
const N = 16;
array U1[2*N][2*N] : f64;
array U2[2*N][2*N] : f64;
nest L1 {
  for i = 0 .. 2*N-1 {
    for j = 0 .. 2*N-1 {
      U1[i][j] = f(U1[i][j]);
    }
  }
}
nest L2 {
  for i = 0 .. 2*N-1 {
    for j = 0 .. 2*N-1 {
      U2[j][i] = g(U2[j][i]);
    }
  }
}
nest L3 {
  for i = 0 .. 2*N-1 {
    for j = 0 .. 2*N-1 {
      U1[i][j] = h(U1[i][j]);
    }
  }
}
";
    let program = parse_program(source)?;
    println!("=== original source ===\n{program}");

    // Stripe the arrays over 4 disks as in Figure 2(b): each stripe holds
    // N/K rows (here 2 KB stripes = 256 elements = 8 rows of 32).
    let striping = Striping::new(2048, 4, 0);
    let layout = LayoutMap::new(&program, striping);
    let deps = analyze(&program);

    let plan = restructure_symbolic(&program, &layout, &deps)?;
    println!("=== restructured source (Figure 2(c) shape) ===");
    println!("{}", plan.to_source(&program));

    // Sanity: the plan enumerates every iteration exactly once and in
    // disk-major order.
    println!(
        "plan scans {} iterations over {} disks (program has {})",
        plan.count(),
        plan.num_disks(),
        program.total_iterations()
    );
    Ok(())
}
