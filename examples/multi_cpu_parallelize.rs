//! The paper's Figures 5 and 6: loop-based vs disk-layout-aware
//! parallelization. Three nests access the same array with different
//! patterns; the baseline gives each processor the same-position chunk of
//! every nest (Figure 6(a)), while the layout-aware scheme keeps each
//! processor on the data — and therefore the disks — it owns (Figure 6(b)).
//!
//! Run with: `cargo run --example multi_cpu_parallelize`

use disk_reuse::core::iteration_disk_mask;
use disk_reuse::prelude::*;

fn footprints(program: &Program, layout: &LayoutMap, schedule: &Schedule) -> Vec<Vec<u64>> {
    (0..schedule.num_phases())
        .map(|phase| {
            (0..schedule.num_procs())
                .map(|proc| {
                    let mut mask = 0u64;
                    for it in schedule.iters(phase, proc) {
                        mask |=
                            iteration_disk_mask(program, layout, it.nest as usize, &it.coords());
                    }
                    mask
                })
                .collect()
        })
        .collect()
}

fn show(label: &str, fps: &[Vec<u64>]) {
    println!("{label}");
    for (phase, procs) in fps.iter().enumerate() {
        print!("  nest {phase}:");
        for (p, m) in procs.iter().enumerate() {
            let disks: Vec<usize> = (0..64).filter(|d| m & (1 << d) != 0).collect();
            print!("  P{p}→{disks:?}");
        }
        println!();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 5 scenario: L1 and L3 sweep by rows, L2 by columns.
    let source = "
program fig5;
const N = 64;
array A[N][N] : bytes(4096);
array B[N][N] : bytes(4096);
array C[N][N] : bytes(4096);
nest L1 { for i = 0 .. N-1 { for j = 0 .. N-1 { B[i][j] = f(A[i][j]); } } }
nest L2 { for i = 0 .. N-1 { for j = 0 .. N-1 { C[i][j] = g(A[j][i]); } } }
nest L3 { for i = 0 .. N-1 { for j = 0 .. N-1 { B[i][j] = h(A[i][j]); } } }
";
    let program = parse_program(source)?;
    let striping = Striping::paper_default();
    let layout = LayoutMap::new(&program, striping);
    let deps = analyze(&program);

    println!(
        "unification step chose distribution dimensions {:?} (0 = row-block)\n",
        dpm_core::distribution_dims(&program, &deps)
    );

    let baseline = parallelize_baseline(&program, &layout, &deps, 4, true);
    let aware = parallelize_layout_aware(&program, &layout, &deps, 4, true);
    baseline.validate_coverage(&program)?;
    aware.validate_coverage(&program)?;

    show(
        "loop-based parallelization (Fig 6(a)) — per-processor disk footprints:",
        &footprints(&program, &layout, &baseline),
    );
    show(
        "\ndisk-layout-aware parallelization (Fig 6(b)):",
        &footprints(&program, &layout, &aware),
    );

    // Simulate both under proactive TPM.
    let gen = TraceGenerator::new(
        &program,
        &layout,
        TraceGenOptions {
            max_request_bytes: striping.stripe_unit(),
            ..TraceGenOptions::default()
        },
    );
    let (tb, _) = gen.generate(&baseline);
    let (ta, _) = gen.generate(&aware);
    let base_sim = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
    let tpm = Simulator::new(
        DiskParams::default(),
        PowerPolicy::Tpm(TpmConfig::proactive()),
        striping,
    );
    let rb = base_sim.run(&tb);
    let eb = tpm.run(&tb);
    let ea = tpm.run(&ta);
    println!(
        "\nenergy under TPM: loop-based {:.0} J ({:+.1}% vs its base) | layout-aware {:.0} J",
        eb.total_energy_j(),
        100.0 * (eb.normalized_energy(&rb) - 1.0),
        ea.total_energy_j(),
    );
    Ok(())
}
