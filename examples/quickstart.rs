//! Quickstart: parse a small out-of-core program, expose its disk layout to
//! the compiler, restructure it for disk reuse, and compare disk energy
//! under TPM before and after — the paper's whole pipeline in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use disk_reuse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two disk-resident arrays swept by two nests with different access
    // patterns — a miniature of the paper's Figure 2(a).
    let source = "
program quickstart;
const N = 512;
array U1[N][N] : bytes(4096);
array U2[N][N] : bytes(4096);
nest L1 {
  for i = 0 .. N-1 {
    for j = 0 .. N-1 {
      U1[i][j] = f(U2[i][j]) @ 60000;
    }
  }
}
nest L2 {
  for i = 0 .. N-1 {
    for j = 0 .. N-1 {
      U2[i][j] = g(U1[i][j]) @ 60000;
    }
  }
}
";
    let program = parse_program(source)?;
    println!(
        "parsed `{}`: {} arrays ({:.2} GB), {} nests, {} iterations",
        program.name,
        program.arrays.len(),
        program.total_data_bytes() as f64 / (1u64 << 30) as f64,
        program.nests.len(),
        program.total_iterations()
    );

    // The disk layout the file system exposes (Table 1 defaults: 32 KB
    // stripe unit over 8 I/O nodes).
    let striping = Striping::paper_default();
    let layout = LayoutMap::new(&program, striping);
    let deps = analyze(&program);

    // Generate traces for the original and the disk-reuse-restructured
    // order.
    let gen = TraceGenerator::new(
        &program,
        &layout,
        TraceGenOptions {
            max_request_bytes: striping.stripe_unit(),
            ..TraceGenOptions::default()
        },
    );
    let original = apply_transform(&program, &layout, &deps, Transform::Original);
    let restructured = apply_transform(&program, &layout, &deps, Transform::DiskReuse);
    let (trace_orig, _) = gen.generate(&original);
    let (trace_rest, _) = gen.generate(&restructured);
    println!(
        "disk switches in request stream: original {}, restructured {}",
        disk_switch_count(&trace_orig, &striping),
        disk_switch_count(&trace_rest, &striping),
    );

    // Simulate both traces on TPM disks (the restructured run uses the
    // compiler-directed proactive variant).
    let base = Simulator::new(DiskParams::default(), PowerPolicy::None, striping);
    let tpm = Simulator::new(
        DiskParams::default(),
        PowerPolicy::Tpm(TpmConfig::proactive()),
        striping,
    );
    let r_base = base.run(&trace_orig);
    let r_orig = tpm.run(&trace_orig);
    let r_rest = tpm.run(&trace_rest);
    println!(
        "disk energy: base {:.0} J | TPM on original {:.0} J ({:+.1}%) | TPM on restructured {:.0} J ({:+.1}%)",
        r_base.total_energy_j(),
        r_orig.total_energy_j(),
        100.0 * (r_orig.normalized_energy(&r_base) - 1.0),
        r_rest.total_energy_j(),
        100.0 * (r_rest.normalized_energy(&r_base) - 1.0),
    );
    println!(
        "spin-downs: original {} → restructured {}",
        r_orig.total_spin_downs(),
        r_rest.total_spin_downs()
    );
    Ok(())
}
